//! The MTE4JNI [`Protection`] implementation and VM factory.

use std::cell::RefCell;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use art_heap::{HeapConfig, ObjectRef, Safepoint, SafepointPhase};
use jni_rt::{AcquireOutcome, JniContext, Protection, ReleaseMode, Vm};
use mte_sim::{TaggedMemory, TaggedPtr, TcfMode};

use crate::table::{Borrow, Release, ReleaseFailure, ReleaseOutcome, TableBackend, TableConfig, TagTable};

thread_local! {
    /// Per-thread borrow cache: the [`Borrow`] tokens minted by
    /// `on_acquire`, keyed by `(scheme instance, outgoing pointer)`.
    /// `on_release` pops the matching token (LIFO for nested borrows of
    /// one object) and hands it to the typed [`TagTable::release`], so
    /// the common release touches no shared lookup structure at all —
    /// the token already carries the address range, tag, and
    /// generation.
    static BORROWS: RefCell<Vec<(u64, u64, Borrow)>> = const { RefCell::new(Vec::new()) };
}

/// Distinguishes the borrow-cache entries of coexisting schemes (tests
/// routinely run several VMs on one thread).
static NEXT_SCHEME_ID: AtomicU64 = AtomicU64::new(1);

fn stash_borrow(scheme: u64, raw: u64, borrow: Borrow) {
    BORROWS.with(|b| b.borrow_mut().push((scheme, raw, borrow)));
}

fn take_borrow(scheme: u64, raw: u64) -> Option<Borrow> {
    BORROWS.with(|b| {
        let mut v = b.borrow_mut();
        let idx = v.iter().rposition(|(s, r, _)| *s == scheme && *r == raw)?;
        Some(v.remove(idx).2)
    })
}

/// The MTE4JNI protection scheme.
///
/// `Get*` tags the object's payload and returns a tagged pointer;
/// `Release*` drops the reference and re-zeroes the tags at zero;
/// [`Protection::uses_thread_mte`] is `true`, so the JNI trampolines
/// enable per-thread checking around native sections.
pub struct Mte4Jni {
    config: TableConfig,
    table: Box<dyn TagTable>,
    /// This instance's key in the per-thread borrow cache.
    id: u64,
    acquires: AtomicU64,
    shared_acquires: AtomicU64,
    releases: AtomicU64,
    tag_frees: AtomicU64,
    rehomes: AtomicU64,
    safepoint_frees: AtomicU64,
}

impl Mte4Jni {
    /// Creates the scheme with the default configuration (lock-free
    /// table, timely tag release).
    pub fn new() -> Mte4Jni {
        Mte4Jni::with_config(TableConfig::default())
    }

    /// Creates the scheme with an explicit configuration.
    ///
    /// The per-thread borrow stash is honoured end-to-end: a stashed
    /// release credit keeps the table entry alive (and the object
    /// tagged) after the funnel has unpinned the object, and the
    /// "tracked implies pinned" coupling the collectors rely on is
    /// restored at their safepoints instead — [`Protection::on_safepoint`]
    /// flushes this thread's credits and purges the collector's
    /// candidates before any address is reclaimed or re-tagged.
    pub fn with_config(config: TableConfig) -> Mte4Jni {
        Mte4Jni {
            config,
            table: config.build(),
            id: NEXT_SCHEME_ID.fetch_add(1, Ordering::Relaxed),
            acquires: AtomicU64::new(0),
            shared_acquires: AtomicU64::new(0),
            releases: AtomicU64::new(0),
            tag_frees: AtomicU64::new(0),
            rehomes: AtomicU64::new(0),
            safepoint_frees: AtomicU64::new(0),
        }
    }

    /// The *effective* configuration of the built table — not
    /// necessarily the one requested: knobs a backend does not
    /// implement are reported as off (today that is `borrow_stash`,
    /// which only the lock-free backend carries; the two-tier and
    /// global-lock tables silently ignore it).
    pub fn config(&self) -> TableConfig {
        TableConfig {
            borrow_stash: self.config.borrow_stash
                && self.config.backend == TableBackend::LockFree,
            ..self.config
        }
    }

    /// The underlying tag table.
    pub fn table(&self) -> &dyn TagTable {
        &*self.table
    }

    /// Operation counters.
    pub fn stats(&self) -> Mte4JniStats {
        Mte4JniStats {
            acquires: self.acquires.load(Ordering::Relaxed),
            shared_acquires: self.shared_acquires.load(Ordering::Relaxed),
            releases: self.releases.load(Ordering::Relaxed),
            tag_frees: self.tag_frees.load(Ordering::Relaxed),
            rehomes: self.rehomes.load(Ordering::Relaxed),
            tracked_objects: self.table.tracked_objects(),
        }
    }

    fn payload_range(cx: &JniContext<'_>, obj: &ObjectRef) -> (TaggedPtr, u64) {
        let begin = cx.heap.data_ptr(obj);
        let end = begin.addr() + obj.byte_len() as u64;
        (begin, end)
    }
}

impl Default for Mte4Jni {
    fn default() -> Self {
        Mte4Jni::new()
    }
}

impl fmt::Debug for Mte4Jni {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mte4Jni")
            .field("config", &self.config)
            .field("stats", &self.stats())
            .finish()
    }
}

impl Protection for Mte4Jni {
    // The scheme name keys telemetry counter prefixes and fault
    // attribution, so it stays `"mte4jni"` across the production
    // backends (lock-free and the paper's two-tier reference — which
    // backend served a run is visible in the table's own counters);
    // only the deliberately naive global-lock ablation is called out.
    fn name(&self) -> &str {
        match self.config.backend {
            TableBackend::LockFree | TableBackend::TwoTier => "mte4jni",
            TableBackend::Global => "mte4jni+global-lock",
        }
    }

    fn on_acquire(&self, cx: &JniContext<'_>, obj: &ObjectRef) -> jni_rt::Result<AcquireOutcome> {
        let (begin, end) = Self::payload_range(cx, obj);
        let borrow = self
            .table
            .acquire(cx.heap.memory(), cx.thread.mte(), begin, end)?;
        self.acquires.fetch_add(1, Ordering::Relaxed);
        if borrow.shared() {
            self.shared_acquires.fetch_add(1, Ordering::Relaxed);
        }
        let ptr = begin.with_tag(borrow.tag());
        stash_borrow(self.id, ptr.raw(), borrow);
        Ok(AcquireOutcome {
            ptr,
            is_copy: false, // native code operates directly on the object
        })
    }

    fn on_release(
        &self,
        cx: &JniContext<'_>,
        obj: &ObjectRef,
        ptr: TaggedPtr,
        mode: ReleaseMode,
    ) -> jni_rt::Result<()> {
        if mode == ReleaseMode::Commit {
            // Data already lives in the object (no copy); JNI_COMMIT keeps
            // the borrow, so the tag — and the cached token — stay.
            return Ok(());
        }
        let (begin, end) = Self::payload_range(cx, obj);
        if let Some(borrow) = take_borrow(self.id, ptr.raw()) {
            match self.table.release(cx.heap.memory(), borrow) {
                Ok(outcome) => {
                    self.releases.fetch_add(1, Ordering::Relaxed);
                    if outcome == Release::Freed {
                        self.tag_frees.fetch_add(1, Ordering::Relaxed);
                    }
                    return Ok(());
                }
                Err(e) => match e.kind {
                    ReleaseFailure::Mem(err) => {
                        // Transient (possibly injected) tag-store failure:
                        // re-cache the token so the funnel's retry finds it
                        // again, and surface the error for that retry loop.
                        stash_borrow(self.id, ptr.raw(), e.borrow);
                        return Err(err.into());
                    }
                    ReleaseFailure::NotTracked | ReleaseFailure::StaleGeneration { .. } => {
                        // The entry moved out from under the token (e.g. a
                        // defensive rehome after compaction): fall through
                        // to the raw path, which keys on the *current*
                        // payload address.
                    }
                },
            }
        }
        // Raw escape hatch: no token (cross-layer force-release) or the
        // token no longer matches the entry.
        let outcome = self.table.release_raw(cx.heap.memory(), begin, end)?;
        self.releases.fetch_add(1, Ordering::Relaxed);
        if outcome == ReleaseOutcome::Freed {
            self.tag_frees.fetch_add(1, Ordering::Relaxed);
        }
        Ok(())
    }

    fn uses_thread_mte(&self) -> bool {
        true
    }

    fn on_relocate(&self, old_payload: u64, new_payload: u64) {
        // The pin ledger keeps every borrowed object in place, so the
        // table normally has no entry for a moved object — but if one
        // exists (broken table ablations, future schemes tracking
        // unborrowed state), it must follow the payload or the next
        // release would miss it and leave the tags stale.
        if self.table.rehome(old_payload, new_payload) {
            self.rehomes.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn on_safepoint(&self, mem: &TaggedMemory, sp: &Safepoint<'_>) {
        match sp.phase {
            SafepointPhase::Sweep => {
                // The collector thread's own parked credits first, then
                // force-free whatever entry survives on each dead,
                // unpinned candidate — alive only through *other*
                // threads' credits, which no flush can reach and which
                // self-invalidate via the generation/epoch checks.
                self.table.flush_stash(mem);
                let mut purged = 0u64;
                for &(begin, end) in sp.candidates {
                    purged += self.table.purge(mem, begin, end);
                }
                self.safepoint_frees.fetch_add(purged, Ordering::Relaxed);
            }
            SafepointPhase::CompactBegin => {
                // Flush before raising the table's safepoint gate (the
                // flush itself returns credits through the gated path),
                // then purge every unpinned tracked entry so the move
                // pass never re-tags an address the table still keys.
                self.table.flush_stash(mem);
                self.table.begin_safepoint();
                let mut purged = 0u64;
                for &(begin, end) in sp.candidates {
                    purged += self.table.purge(mem, begin, end);
                }
                self.safepoint_frees.fetch_add(purged, Ordering::Relaxed);
            }
            SafepointPhase::CompactEnd => self.table.end_safepoint(),
        }
    }

    fn counters(&self) -> Vec<(&'static str, u64)> {
        let s = self.stats();
        let mut out = vec![
            ("acquires", s.acquires),
            ("shared_acquires", s.shared_acquires),
            ("releases", s.releases),
            ("tag_frees", s.tag_frees),
            ("rehomes", s.rehomes),
            ("tracked_objects", s.tracked_objects as u64),
            // The *effective* stash state (0 when the backend ignores
            // the requested `borrow_stash`) — `runtime_doctor` and the
            // telemetry registry surface configuration overrides here
            // instead of in a doc comment.
            ("borrow_stash_effective", u64::from(self.config().borrow_stash)),
            // Entries force-freed by a GC-safepoint purge. Closes the
            // funnel conservation law on every backend:
            //   acquires - shared_acquires
            //     == tag_frees + atomic_stash_flush_frees + safepoint_purge_frees
            ("safepoint_purge_frees", self.safepoint_frees.load(Ordering::Relaxed)),
        ];
        out.extend(self.table.counters());
        out
    }
}

/// Operation counters for [`Mte4Jni`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Mte4JniStats {
    /// `Get*` interpositions.
    pub acquires: u64,
    /// Acquires that shared an existing tag (reference count > 1).
    pub shared_acquires: u64,
    /// `Release*` interpositions.
    pub releases: u64,
    /// Releases that dropped the count to zero and freed the tags.
    pub tag_frees: u64,
    /// Tag-table entries rehomed by the compacting collector.
    pub rehomes: u64,
    /// Objects currently tracked.
    pub tracked_objects: usize,
}

/// Assembles a complete MTE4JNI runtime: 16-byte-aligned `PROT_MTE` heap
/// (§4.1), the [`Mte4Jni`] scheme, and the process check mode (`Sync` or
/// `Async`, §2.1). A [`GuardedCopy`] fallback is installed so quarantined
/// methods and tag-exhausted acquires degrade to guarded copy instead of
/// failing (faults still abort unless
/// [`FaultPolicy::Contain`](jni_rt::FaultPolicy::Contain) is selected on
/// a custom-built VM).
///
/// [`GuardedCopy`]: guarded_copy::GuardedCopy
pub fn mte4jni_vm(mode: TcfMode, config: TableConfig) -> Vm {
    Vm::builder()
        .heap_config(HeapConfig::mte4jni())
        .check_mode(mode)
        .protection(Arc::new(Mte4Jni::with_config(config)))
        .fallback_protection(Arc::new(guarded_copy::GuardedCopy::new()))
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use jni_rt::NativeKind;
    use mte_sim::{FaultKind, Tag};

    fn sync_vm() -> Vm {
        mte4jni_vm(TcfMode::Sync, TableConfig::default())
    }

    #[test]
    fn in_bounds_native_access_works_under_sync_checking() {
        let vm = sync_vm();
        let t = vm.attach_thread("main");
        let env = vm.env(&t);
        let a = env.new_int_array_from(&[1, 2, 3, 4]).unwrap();
        let sum = env
            .call_native("sum", NativeKind::Normal, |env| {
                let elems = env.get_primitive_array_critical(&a)?;
                assert!(!elems.is_copy(), "MTE4JNI operates on the original object");
                assert!(!elems.ptr().tag().is_untagged(), "pointer carries the tag");
                let mem = env.native_mem();
                let mut s = 0;
                for i in 0..4 {
                    s += elems.read_i32(&mem, i)?;
                }
                env.release_primitive_array_critical(&a, elems, ReleaseMode::CopyBack)?;
                Ok(s)
            })
            .unwrap();
        assert_eq!(sum, 10);
    }

    #[test]
    fn oob_write_faults_immediately_and_precisely_in_sync_mode() {
        // Figure 4b: the fault surfaces at the faulting instruction, with
        // the native method on top of the backtrace.
        let vm = sync_vm();
        let t = vm.attach_thread("main");
        let env = vm.env(&t);
        let a = env.new_int_array(18).unwrap();
        let err = env
            .call_native("test_ofb", NativeKind::Normal, |env| -> jni_rt::Result<()> {
                let elems = env.get_primitive_array_critical(&a)?;
                let mem = env.native_mem();
                elems.write_i32(&mem, 21, 0xBAD)?;
                unreachable!("sync mode never reaches the release");
            })
            .unwrap_err();
        let fault = err.as_tag_check().expect("tag-check fault");
        assert_eq!(fault.kind, FaultKind::Sync);
        assert!(fault.is_precise());
        assert!(
            fault.backtrace.top().unwrap().label.starts_with("test_ofb"),
            "trace points at the faulting native method: {}",
            fault.backtrace
        );
    }

    #[test]
    fn oob_read_faults_too_unlike_guarded_copy() {
        let vm = sync_vm();
        let t = vm.attach_thread("main");
        let env = vm.env(&t);
        let a = env.new_int_array(8).unwrap();
        let err = env
            .call_native("oob_read", NativeKind::Normal, |env| -> jni_rt::Result<()> {
                let elems = env.get_primitive_array_critical(&a)?;
                let mem = env.native_mem();
                let _ = elems.read_i32(&mem, 12)?;
                unreachable!();
            })
            .unwrap_err();
        assert!(err.as_tag_check().is_some(), "reads are detected");
    }

    #[test]
    fn async_mode_defers_fault_to_next_syscall() {
        // Figure 4c: the corrupting write goes through; the fault surfaces
        // at the next syscall (here: the logging call) with an imprecise
        // backtrace.
        let vm = mte4jni_vm(TcfMode::Async, TableConfig::default());
        let t = vm.attach_thread("main");
        let env = vm.env(&t);
        let a = env.new_int_array(18).unwrap();
        let err = env
            .call_native("test_ofb", NativeKind::Normal, |env| -> jni_rt::Result<()> {
                let elems = env.get_primitive_array_critical(&a)?;
                let mem = env.native_mem();
                elems.write_i32(&mem, 21, 0xBAD)?; // proceeds!
                env.log("finished the loop")?; // syscall → fault surfaces
                unreachable!();
            })
            .unwrap_err();
        let fault = err.as_tag_check().expect("tag-check fault");
        assert_eq!(fault.kind, FaultKind::Async);
        assert!(!fault.is_precise());
        assert_eq!(
            &*fault.backtrace.top().unwrap().label,
            "getuid+4",
            "trace points at the syscall, far from the fault: {}",
            fault.backtrace
        );
    }

    #[test]
    fn release_restores_untagged_access() {
        let vm = sync_vm();
        let t = vm.attach_thread("main");
        let env = vm.env(&t);
        let a = env.new_int_array(8).unwrap();
        env.call_native("touch", NativeKind::Normal, |env| {
            let elems = env.get_primitive_array_critical(&a)?;
            env.release_primitive_array_critical(&a, elems, ReleaseMode::CopyBack)
        })
        .unwrap();
        // The release parked a stash credit, so the tag deliberately
        // lingers (a same-thread reacquire would redeem it with no RMW)…
        assert_ne!(
            vm.heap().memory().raw_tag_at(a.data_addr()).unwrap(),
            Tag::UNTAGGED
        );
        // …until the next GC safepoint flushes the credit; from then on
        // managed access (untagged) is clean even from a checking thread.
        vm.heap().sweep();
        assert_eq!(
            vm.heap().memory().raw_tag_at(a.data_addr()).unwrap(),
            Tag::UNTAGGED
        );
    }

    #[test]
    fn concurrent_gc_scanner_is_undisturbed_by_tagged_objects() {
        // §3.3: thread-level control means the GC's untagged scans of
        // tagged objects never fault.
        let vm = sync_vm();
        let t = vm.attach_thread("main");
        let env = vm.env(&t);
        let a = env.new_int_array(256).unwrap();
        let gc = vm.start_gc(std::time::Duration::from_micros(100));
        env.call_native("hold", NativeKind::Normal, |env| {
            let elems = env.get_primitive_array_critical(&a)?;
            // Keep reading while the GC scans the tagged object underneath
            // us; spin on the live cycle counter rather than a fixed
            // iteration count so a loaded machine can't starve the scanner
            // out of the borrow window.
            let mem = env.native_mem();
            while gc.cycles() == 0 {
                let _ = elems.read_i32(&mem, 0)?;
            }
            env.release_primitive_array_critical(&a, elems, ReleaseMode::CopyBack)
        })
        .unwrap();
        let report = gc.stop();
        assert!(report.cycles > 0);
        assert!(report.faults.is_empty(), "GC never faults under MTE4JNI");
    }

    #[test]
    fn two_threads_share_one_tag() {
        let vm = sync_vm();
        let a = {
            let t = vm.attach_thread("setup");
            let env = vm.env(&t);
            env.new_int_array_from(&[7; 64]).unwrap()
        };
        let scheme = vm.protection().clone();
        std::thread::scope(|s| {
            for i in 0..2 {
                let vm = &vm;
                let a = a.clone();
                s.spawn(move || {
                    let t = vm.attach_thread(format!("worker-{i}"));
                    let env = vm.env(&t);
                    for _ in 0..200 {
                        env.call_native("reader", NativeKind::Normal, |env| {
                            let elems = env.get_primitive_array_critical(&a)?;
                            let mem = env.native_mem();
                            let mut s = 0;
                            for j in 0..64 {
                                s += elems.read_i32(&mem, j)?;
                            }
                            assert_eq!(s, 7 * 64);
                            env.release_primitive_array_critical(
                                &a,
                                elems,
                                ReleaseMode::CopyBack,
                            )
                        })
                        .unwrap();
                    }
                });
            }
        });
        let _ = scheme;
        // All borrows ended, but each worker's last release parked a
        // credit, and `thread::scope` unblocks when the closures finish
        // — the workers' TLS backstops may still be running. The
        // compaction safepoint makes the cleanup deterministic: its
        // purge force-frees any tracked-but-unpinned entry (racing
        // backstops are held off by the table's safepoint gate and then
        // see their generation die).
        vm.heap().compact();
        assert_eq!(
            vm.heap().memory().raw_tag_at(a.data_addr()).unwrap(),
            Tag::UNTAGGED
        );
    }

    #[test]
    fn critical_native_methods_skip_tco_and_stay_unchecked() {
        let vm = sync_vm();
        let t = vm.attach_thread("main");
        let env = vm.env(&t);
        env.call_native("fast_math", NativeKind::CriticalNative, |env| {
            assert!(
                !env.thread().mte().checks_enabled(),
                "@CriticalNative never enables checking (§4.3)"
            );
            Ok(())
        })
        .unwrap();
        env.call_native("fast_heap", NativeKind::FastNative, |env| {
            assert!(
                env.thread().mte().checks_enabled(),
                "@FastNative does enable checking (§4.3)"
            );
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn sweep_spares_a_natively_borrowed_object_until_release() {
        let vm = sync_vm();
        let t = vm.attach_thread("main");
        let env = vm.env(&t);
        let (elems, obj_addr) = {
            let a = env.new_int_array_from(&[9, 8, 7]).unwrap();
            let elems = env.get_primitive_array_critical(&a).unwrap();
            (elems, a.addr())
            // The only Java handle drops here: the object is dead to the
            // GC but still borrowed by native code.
        };
        let ptr = elems.ptr();
        let stats = vm.heap().sweep();
        assert_eq!(stats.swept, 0, "pin ledger holds the borrowed object");
        assert_eq!(stats.pinned, 1);
        // The memory tag is still live at the payload.
        assert_eq!(vm.heap().memory().raw_tag_at(ptr.addr()).unwrap(), ptr.tag());
        // The final release, through a handle resurrected from the pin
        // ledger, ends the borrow and frees the tags...
        let a = vm
            .heap()
            .pinned_handle(obj_addr)
            .expect("borrowed object is pinned")
            .as_array()
            .unwrap();
        env.release_primitive_array_critical(&a, elems, ReleaseMode::CopyBack)
            .unwrap();
        // The release parked a stash credit: the tag lingers until a
        // safepoint redeems it.
        assert_ne!(vm.heap().memory().raw_tag_at(ptr.addr()).unwrap(), Tag::UNTAGGED);
        drop(a);
        // ...and only now may the sweep reclaim the object — its
        // safepoint flush returns the parked credit first, so the
        // address goes back to the allocator untracked and untagged.
        let stats = vm.heap().sweep();
        assert_eq!(stats.swept, 1);
        assert_eq!(stats.pinned, 0);
        assert_eq!(vm.heap().memory().raw_tag_at(ptr.addr()).unwrap(), Tag::UNTAGGED);
    }

    #[test]
    fn compaction_leaves_borrowed_objects_in_place() {
        let scheme = Arc::new(Mte4Jni::new());
        let vm = Vm::builder()
            .heap_config(HeapConfig::mte4jni())
            .check_mode(TcfMode::Sync)
            .protection(scheme.clone())
            .build();
        let t = vm.attach_thread("main");
        let env = vm.env(&t);
        let held = env.new_int_array_from(&[5; 16]).unwrap();
        let garbage = env.new_int_array(16).unwrap();
        let mover = env.new_int_array_from(&[6; 16]).unwrap();
        let elems = env.get_primitive_array_critical(&held).unwrap();
        let held_ptr = elems.ptr();
        let mover_old = mover.data_addr();
        drop(garbage);

        let stats = vm.heap().compact();
        assert_eq!(stats.pinned_skipped, 1, "the borrowed object is an obstacle");
        assert_eq!(stats.moved_objects, 1);
        assert!(mover.data_addr() < mover_old, "slid into the reclaimed gap");
        // The borrowed object kept its address and its live tag, so the
        // native pointer handed out before the collection still works.
        assert_eq!(held.data_addr(), held_ptr.addr());
        assert_eq!(
            vm.heap().memory().raw_tag_at(held_ptr.addr()).unwrap(),
            held_ptr.tag()
        );
        // Pinning kept every tracked entry in place — nothing to rehome.
        assert_eq!(scheme.stats().rehomes, 0);
        // The ordinary release path still finds the entry; the stash
        // parks the credit, and the next safepoint flush frees the tags.
        env.release_primitive_array_critical(&held, elems, ReleaseMode::CopyBack)
            .unwrap();
        vm.heap().sweep();
        assert_eq!(
            vm.heap().memory().raw_tag_at(held_ptr.addr()).unwrap(),
            Tag::UNTAGGED
        );
        // And the moved object's payload followed it.
        assert_eq!(vm.heap().int_at(&t, &mover, 0).unwrap(), 6);
    }

    #[test]
    fn stats_track_sharing_and_frees() {
        let scheme = Arc::new(Mte4Jni::new());
        let vm = Vm::builder()
            .heap_config(HeapConfig::mte4jni())
            .check_mode(TcfMode::Sync)
            .protection(scheme.clone())
            .build();
        let t = vm.attach_thread("main");
        let env = vm.env(&t);
        let a = env.new_int_array(4).unwrap();
        let e1 = env.get_primitive_array_critical(&a).unwrap();
        let e2 = env.get_primitive_array_critical(&a).unwrap();
        env.release_primitive_array_critical(&a, e2, ReleaseMode::CopyBack).unwrap();
        env.release_primitive_array_critical(&a, e1, ReleaseMode::CopyBack).unwrap();
        let s = scheme.stats();
        assert_eq!(s.acquires, 2);
        assert_eq!(s.shared_acquires, 1);
        assert_eq!(s.releases, 2);
        // Both releases parked credits: no typed free yet, the entry
        // lives on until the safepoint flush returns the credits.
        assert_eq!(s.tag_frees, 0);
        assert_eq!(s.tracked_objects, 1);
        vm.heap().sweep();
        let s = scheme.stats();
        assert_eq!(s.tracked_objects, 0);
        let flush_frees = scheme
            .counters()
            .iter()
            .find(|(k, _)| *k == "atomic_stash_flush_frees")
            .map(|&(_, v)| v)
            .unwrap();
        // The funnel-level conservation law: every fresh acquire is
        // balanced by a typed free or a stash-flush free.
        assert_eq!(s.acquires - s.shared_acquires, s.tag_frees + flush_frees);
        assert_eq!(flush_frees, 1);
    }
}

//! **MTE4JNI** — the paper's contribution (CGO '25): an MTE-based JNI
//! checking method that protects Java heap memory from illicit native code
//! access.
//!
//! The scheme interposes on every JNI interface that returns a raw pointer
//! to a Java heap object (Table 1) and consists of three parts (§3):
//!
//! 1. **Memory tag allocation** ([`TagTable::acquire`], Algorithm 1):
//!    before the pointer is returned, a random 4-bit tag is generated with
//!    `irg` and applied to every granule of the object with `st2g`/`stg`;
//!    the pointer is returned carrying the same tag in bits 56–59.
//!    Concurrent acquirers of the same object share one tag through a
//!    per-object **reference count**. The paper finds the count via `k`
//!    hash tables guarded by a **two-tier locking scheme** (table locks +
//!    per-object locks, [`TwoTierTable`]); the production default is the
//!    lock-free [`AtomicEntryTable`], which packs count + tag + state +
//!    generation into one CAS-able word per object (DESIGN.md §13).
//! 2. **Memory tag release** ([`TagTable::release`], Algorithm 2): the
//!    matching release interface consumes the typed [`Borrow`] token,
//!    decrements the count, and at zero re-zeroes the memory tags so
//!    stale tags cannot alias future allocations.
//! 3. **Thread-level MTE enabling** (§3.3): tag checking must apply only
//!    to threads executing native code, because GC and other runtime
//!    threads access the same objects with untagged pointers. The scheme
//!    reports [`Protection::uses_thread_mte`]` = true`, which makes the
//!    JNI trampolines flip the per-thread `TCO` register around native
//!    sections.
//!
//! The naive single **global lock** variant the paper compares against in
//! Figure 6 is provided as [`GlobalLockTable`].
//!
//! # Example
//!
//! ```
//! use mte4jni::{mte4jni_vm, Mte4JniConfig};
//! use mte_sim::TcfMode;
//! use jni_rt::NativeKind;
//!
//! # fn main() {
//! let vm = mte4jni_vm(TcfMode::Sync, Mte4JniConfig::default());
//! let thread = vm.attach_thread("main");
//! let env = vm.env(&thread);
//! let array = env.new_int_array(18).unwrap();
//!
//! let err = env
//!     .call_native("test_ofb", NativeKind::Normal, |env| {
//!         let elems = env.get_primitive_array_critical(&array)?;
//!         let mem = env.native_mem();
//!         elems.write_i32(&mem, 21, 0xBAD)?; // out of bounds: faults HERE
//!         env.release_primitive_array_critical(&array, elems, Default::default())
//!     })
//!     .unwrap_err();
//! assert!(err.as_tag_check().is_some());
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod alloc_tagging;
mod atomic_table;
pub mod entry;
mod scheme;
mod table;

pub use alloc_tagging::AllocTagging;
pub use atomic_table::AtomicEntryTable;
pub use scheme::{mte4jni_vm, Mte4Jni, Mte4JniStats};
pub use table::{
    Borrow, GlobalLockTable, Release, ReleaseError, ReleaseFailure, ReleaseOutcome, TableBackend,
    TableConfig, TagTable, TwoTierTable,
};

/// Migration alias: the scheme configuration is now the backend-generic
/// [`TableConfig`] (the former `Locking` enum became
/// [`TableConfig::backend`]).
pub type Mte4JniConfig = TableConfig;

// Re-exported so downstream code can name the trait without importing
// `jni_rt` separately.
pub use jni_rt::Protection;

//! Fault containment, quarantine, and graceful degradation on the full
//! MTE4JNI stack: contained sync/async faults keep the VM alive with
//! balanced tables/pins/tags, repeated faults quarantine the offending
//! native method onto the guarded-copy fallback, `irg` tag-pool
//! exhaustion degrades a single acquire, and transient injected faults
//! are retried with deterministic backoff.

use std::sync::Arc;

use art_heap::HeapConfig;
use guarded_copy::GuardedCopy;
use jni_rt::{ContainmentConfig, FaultPolicy, JniError, NativeKind, ReleaseMode, Vm};
use mte4jni::Mte4Jni;
use mte_sim::inject::{self, FaultPlan, InjectCounters};
use mte_sim::{FaultKind, Tag, TcfMode};
use telemetry::JniInterface;

struct TestVm {
    vm: Vm,
    scheme: Arc<Mte4Jni>,
    fallback: Arc<GuardedCopy>,
}

/// An MTE4JNI VM with a guarded-copy fallback and `FaultPolicy::Contain`.
fn contain_vm(mode: TcfMode, config: ContainmentConfig) -> TestVm {
    let scheme = Arc::new(Mte4Jni::new());
    let fallback = Arc::new(GuardedCopy::new());
    let vm = Vm::builder()
        .heap_config(HeapConfig::mte4jni())
        .check_mode(mode)
        .protection(scheme.clone())
        .fallback_protection(fallback.clone())
        .fault_policy(FaultPolicy::Contain)
        .containment_config(config)
        .build();
    TestVm {
        vm,
        scheme,
        fallback,
    }
}

/// A clean in-bounds native call used to prove the VM still serves
/// requests after a contained fault.
fn clean_call(env: &jni_rt::JniEnv<'_>) -> jni_rt::Result<i32> {
    let a = env.new_int_array_from(&[1, 2, 3, 4])?;
    env.call_native("native_ok", NativeKind::Normal, |env| {
        let elems = env.get_primitive_array_critical(&a)?;
        let mem = env.native_mem();
        let mut s = 0;
        for i in 0..4 {
            s += elems.read_i32(&mem, i)?;
        }
        env.release_primitive_array_critical(&a, elems, ReleaseMode::CopyBack)?;
        Ok(s)
    })
}

#[test]
fn contained_sync_fault_keeps_vm_alive_and_balanced() {
    let t = contain_vm(TcfMode::Sync, ContainmentConfig::default());
    let thread = t.vm.attach_thread("main");
    let env = t.vm.env(&thread);
    let a = env.new_int_array(16).unwrap();
    let err = env
        .call_native("native_scan", NativeKind::Normal, |env| -> jni_rt::Result<()> {
            let elems = env.get_primitive_array_critical(&a)?;
            let mem = env.native_mem();
            // Out of bounds on a 16-int array; the borrow is leaked on
            // purpose so containment has something to reclaim.
            elems.write_i32(&mem, 40, 0xBAD)?;
            unreachable!("sync faults surface at the store");
        })
        .unwrap_err();
    match &err {
        JniError::ContainedFault { method, fault } => {
            assert_eq!(*method, "native_scan");
            assert_eq!(fault.kind, FaultKind::Sync);
            let attribution = fault.attribution.as_ref().expect("fault is attributed");
            assert_eq!(attribution.interface, JniInterface::PrimitiveArrayCritical);
            assert_eq!(attribution.scheme, "mte4jni");
        }
        other => panic!("expected a contained fault, got {other:?}"),
    }
    // Nothing under a nested trampoline re-reports it as a raw fault.
    assert!(err.as_tag_check().is_none());

    // The leaked borrow was force-released, which parks a stash credit;
    // the sweep safepoint flushes it, restoring the quiescent state the
    // pin ledger, tag table, and tags all agree on.
    t.vm.heap().sweep();
    assert_eq!(t.scheme.stats().tracked_objects, 0);
    assert_eq!(t.vm.heap().pinned_count(), 0);
    assert_eq!(
        t.vm.heap().memory().raw_tag_at(a.data_addr()).unwrap(),
        Tag::UNTAGGED
    );

    let stats = t.vm.containment_stats();
    assert_eq!(stats.contained_faults, 1);
    assert_eq!(stats.tombstones, 1);
    let tombstones = t.vm.tombstones();
    assert_eq!(tombstones[0].method, "native_scan");
    assert_eq!(tombstones[0].released_borrows, 1);

    // The VM keeps serving the same thread.
    assert_eq!(clean_call(&env).unwrap(), 10);
}

#[test]
fn contained_async_fault_surfaces_at_method_end() {
    let t = contain_vm(TcfMode::Async, ContainmentConfig::default());
    let thread = t.vm.attach_thread("main");
    let env = t.vm.env(&thread);
    let a = env.new_int_array(16).unwrap();
    let err = env
        .call_native("native_churn", NativeKind::Normal, |env| {
            let elems = env.get_primitive_array_critical(&a)?;
            let mem = env.native_mem();
            elems.write_i32(&mem, 40, 0xBAD)?; // proceeds: async mode
            env.release_primitive_array_critical(&a, elems, ReleaseMode::CopyBack)
        })
        .unwrap_err();
    match err {
        JniError::ContainedFault { method, fault } => {
            assert_eq!(method, "native_churn");
            assert_eq!(fault.kind, FaultKind::Async);
        }
        other => panic!("expected a contained fault, got {other:?}"),
    }
    // The body released its borrow itself; containment reclaimed none.
    // That release parked a stash credit — flush it at a safepoint
    // before asserting the table is back to empty.
    assert_eq!(t.vm.tombstones()[0].released_borrows, 0);
    t.vm.heap().sweep();
    assert_eq!(t.scheme.stats().tracked_objects, 0);
    assert_eq!(clean_call(&env).unwrap(), 10);
}

#[test]
fn async_fault_surfaces_exactly_once() {
    // Abort policy: the raw fault reaches the caller, but only at the
    // first thread-state transition after the corrupting store — and
    // only once.
    let vm = mte4jni::mte4jni_vm(TcfMode::Async, mte4jni::Mte4JniConfig::default());
    let thread = vm.attach_thread("main");
    let env = vm.env(&thread);
    let a = env.new_int_array(16).unwrap();
    let err = env
        .call_native("poison", NativeKind::Normal, |env| {
            let elems = env.get_primitive_array_critical(&a)?;
            let mem = env.native_mem();
            elems.write_i32(&mem, 40, 0xBAD)?;
            env.release_primitive_array_critical(&a, elems, ReleaseMode::CopyBack)
        })
        .unwrap_err();
    let fault = err.as_tag_check().expect("latched fault at method end");
    assert_eq!(fault.kind, FaultKind::Async);

    // The latch was consumed: the next call with an explicit syscall
    // checkpoint is clean.
    env.call_native("clean", NativeKind::Normal, |env| env.log("checkpoint"))
        .unwrap();
}

#[test]
fn async_fault_does_not_leak_into_unrelated_thread() {
    let vm = mte4jni::mte4jni_vm(TcfMode::Async, mte4jni::Mte4JniConfig::default());
    let ta = vm.attach_thread("victim");
    let tb = vm.attach_thread("bystander");
    let env_a = vm.env(&ta);
    let env_b = vm.env(&tb);
    let a = env_a.new_int_array(16).unwrap();
    let err = env_a
        .call_native("poison", NativeKind::Normal, |env| {
            let elems = env.get_primitive_array_critical(&a)?;
            let mem = env.native_mem();
            elems.write_i32(&mem, 40, 0xBAD)?; // latched on thread A only
            // Thread B hits a syscall checkpoint while A's fault is
            // latched; B's TFSR is clean, so nothing surfaces there.
            env_b
                .call_native("bystander", NativeKind::Normal, |envb| {
                    envb.log("checkpoint")
                })
                .expect("the latch is per-thread");
            env.release_primitive_array_critical(&a, elems, ReleaseMode::CopyBack)
        })
        .unwrap_err();
    // A's own method-end transition still surfaces A's fault.
    let fault = err.as_tag_check().expect("victim sees its own fault");
    assert_eq!(fault.kind, FaultKind::Async);
    assert_eq!(&*fault.thread, "victim");
}

#[test]
fn repeated_faults_quarantine_the_method_onto_guarded_copy() {
    let t = contain_vm(
        TcfMode::Sync,
        ContainmentConfig {
            quarantine_threshold: 2,
            ..ContainmentConfig::default()
        },
    );
    let thread = t.vm.attach_thread("main");
    let env = t.vm.env(&thread);

    for _ in 0..2 {
        let a = env.new_int_array(16).unwrap();
        let err = env
            .call_native("native_bad", NativeKind::Normal, |env| -> jni_rt::Result<()> {
                let elems = env.get_primitive_array_critical(&a)?;
                let mem = env.native_mem();
                elems.write_i32(&mem, 40, 0xBAD)?;
                unreachable!();
            })
            .unwrap_err();
        assert!(matches!(err, JniError::ContainedFault { .. }));
    }
    assert!(t.vm.containment().is_quarantined("native_bad"));
    assert_eq!(t.vm.containment().quarantined_methods(), vec!["native_bad"]);

    // The quarantined method now degrades to guarded copy: acquires
    // return a shadow copy, and the same out-of-bounds index lands in
    // the red zone instead of faulting the process.
    let a = env.new_int_array_from(&[5; 16]).unwrap();
    let sum = env
        .call_native("native_bad", NativeKind::Normal, |env| {
            let elems = env.get_primitive_array_critical(&a)?;
            assert!(elems.is_copy(), "quarantined method gets a guarded copy");
            let mem = env.native_mem();
            let mut s = 0;
            for i in 0..16 {
                s += elems.read_i32(&mem, i)?;
            }
            env.release_primitive_array_critical(&a, elems, ReleaseMode::CopyBack)?;
            Ok(s)
        })
        .unwrap();
    assert_eq!(sum, 80);
    assert_eq!(t.fallback.tracked_shadows(), 0);

    // Other methods are untouched by the quarantine.
    let b = env.new_int_array(4).unwrap();
    env.call_native("native_good", NativeKind::Normal, |env| {
        let elems = env.get_primitive_array_critical(&b)?;
        assert!(!elems.is_copy(), "non-quarantined methods stay on MTE4JNI");
        env.release_primitive_array_critical(&b, elems, ReleaseMode::CopyBack)
    })
    .unwrap();

    let stats = t.vm.containment_stats();
    assert_eq!(stats.contained_faults, 2);
    assert_eq!(stats.quarantined_methods, 1);
    assert_eq!(stats.degraded_quarantine, 1);
}

#[test]
fn tag_pool_exhaustion_degrades_a_single_acquire() {
    let t = contain_vm(TcfMode::Sync, ContainmentConfig::default());
    let thread = t.vm.attach_thread("main");
    let env = t.vm.env(&thread);
    let a = env.new_int_array_from(&[9; 8]).unwrap();

    // Exhaust the tag pool deterministically: every irg draw returns
    // the excluded zero tag.
    inject::install(
        FaultPlan {
            irg_exhaust_ppm: 1_000_000,
            ..FaultPlan::default()
        },
        0xE4A,
        Arc::new(InjectCounters::default()),
    );
    let sum = env
        .call_native("native_scan", NativeKind::Normal, |env| {
            let elems = env.get_primitive_array_critical(&a)?;
            assert!(elems.is_copy(), "exhausted acquire degraded to guarded copy");
            let mem = env.native_mem();
            let mut s = 0;
            for i in 0..8 {
                s += elems.read_i32(&mem, i)?;
            }
            env.release_primitive_array_critical(&a, elems, ReleaseMode::CopyBack)?;
            Ok(s)
        })
        .unwrap();
    inject::clear();
    assert_eq!(sum, 72);
    assert_eq!(t.fallback.tracked_shadows(), 0);
    assert_eq!(t.vm.containment_stats().degraded_tag_exhaustion, 1);

    // With the pool healthy again the very next acquire is back on
    // MTE4JNI — degradation was per-acquire, not sticky.
    env.call_native("native_scan", NativeKind::Normal, |env| {
        let elems = env.get_primitive_array_critical(&a)?;
        assert!(!elems.is_copy(), "healthy pool goes back to MTE4JNI");
        env.release_primitive_array_critical(&a, elems, ReleaseMode::CopyBack)
    })
    .unwrap();
    assert_eq!(t.vm.containment_stats().degraded_tag_exhaustion, 1);
}

#[test]
fn transient_faults_are_retried_then_surfaced_with_balanced_state() {
    let t = contain_vm(TcfMode::Sync, ContainmentConfig::default());
    let retries = u64::from(t.vm.containment().config().transient_retries);
    let thread = t.vm.attach_thread("main");
    let env = t.vm.env(&thread);
    let a = env.new_int_array(8).unwrap();

    // Every tag store fails with a transient injected fault, so the
    // acquire exhausts its retry budget and surfaces the error.
    inject::install(
        FaultPlan {
            stg_fail_ppm: 1_000_000,
            ..FaultPlan::default()
        },
        0x7E57,
        Arc::new(InjectCounters::default()),
    );
    let err = env
        .call_native("native_scan", NativeKind::Normal, |env| -> jni_rt::Result<()> {
            let elems = env.get_primitive_array_critical(&a)?;
            let mem = env.native_mem();
            let _ = elems.read_i32(&mem, 0)?;
            unreachable!("the acquire never succeeds");
        })
        .unwrap_err();
    inject::clear();
    assert!(err.is_transient(), "surfaced error keeps its class: {err:?}");
    assert_eq!(t.vm.containment_stats().transient_retries, retries);

    // The failed acquire rolled everything back.
    assert_eq!(t.scheme.stats().tracked_objects, 0);
    assert_eq!(t.vm.heap().pinned_count(), 0);
    assert_eq!(clean_call(&env).unwrap(), 10);
}

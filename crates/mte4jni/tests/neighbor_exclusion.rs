//! The neighbour-tag-exclusion extension: adjacent-object out-of-bounds
//! accesses are detected *deterministically*, not with probability 14/15.

use std::sync::Arc;

use art_heap::HeapConfig;
use jni_rt::{NativeKind, ReleaseMode, Vm};
use mte4jni::{Mte4Jni, Mte4JniConfig};
use mte_sim::TcfMode;

fn vm(exclude_neighbor_tags: bool) -> Vm {
    Vm::builder()
        .heap_config(HeapConfig::mte4jni())
        .check_mode(TcfMode::Sync)
        .protection(Arc::new(Mte4Jni::with_config(Mte4JniConfig {
            exclude_neighbor_tags,
            ..Mte4JniConfig::default()
        })))
        .build()
}

/// Allocates two adjacent arrays, borrows both (so both are tagged), and
/// reaches from `a`'s pointer into `b`'s payload. Returns whether the
/// cross-object access was detected.
fn cross_access_detected(env: &jni_rt::JniEnv<'_>) -> bool {
    let a = env.new_int_array(4).unwrap();
    let b = env.new_int_array(4).unwrap();
    env.call_native("cross", NativeKind::Normal, |env| {
        let ea = env.get_primitive_array_critical(&a)?;
        let eb = env.get_primitive_array_critical(&b)?;
        let mem = env.native_mem();
        let step = (b.data_addr() as i64 - a.data_addr() as i64) / 4;
        let detected = ea.read_i32(&mem, step as isize).is_err();
        env.release_primitive_array_critical(&b, eb, ReleaseMode::Abort)?;
        env.release_primitive_array_critical(&a, ea, ReleaseMode::Abort)?;
        Ok(detected)
    })
    .unwrap()
}

#[test]
fn baseline_misses_adjacent_objects_occasionally() {
    let vm = vm(false);
    let thread = vm.attach_thread("t");
    let env = vm.env(&thread);
    let mut missed = 0;
    for _ in 0..400 {
        if !cross_access_detected(&env) {
            missed += 1;
        }
        vm.heap().sweep();
    }
    // Expected ≈ 400/15 ≈ 27; anywhere in (0, 80) confirms the
    // probabilistic regime without flaking.
    assert!(missed > 0, "the 1/15 collision must eventually occur");
    assert!(missed < 80, "but not much more often than 1/15 ({missed}/400)");
}

#[test]
fn exclusion_makes_adjacent_detection_deterministic() {
    let vm = vm(true);
    let thread = vm.attach_thread("t");
    let env = vm.env(&thread);
    for trial in 0..400 {
        assert!(
            cross_access_detected(&env),
            "trial {trial}: adjacent access must always be caught"
        );
        vm.heap().sweep();
    }
}

#[test]
fn exclusion_costs_extra_ldg_on_first_acquire_only() {
    let vm = vm(true);
    let thread = vm.attach_thread("t");
    let env = vm.env(&thread);
    // Padding keeps all four neighbour probes inside the heap range.
    let _pad = env.new_int_array(16).unwrap();
    let a = env.new_int_array(16).unwrap();
    let before = vm.heap().memory().stats().snapshot();
    env.call_native("cost", NativeKind::Normal, |env| {
        let e1 = env.get_primitive_array_critical(&a)?;
        let e2 = env.get_primitive_array_critical(&a)?; // shared: no irg
        env.release_primitive_array_critical(&a, e2, ReleaseMode::Abort)?;
        env.release_primitive_array_critical(&a, e1, ReleaseMode::Abort)
    })
    .unwrap();
    let d = vm.heap().memory().stats().snapshot().since(&before);
    assert_eq!(d.irg_ops, 1);
    assert_eq!(
        d.ldg_ops, 5,
        "4 neighbour probes on the first acquire + 1 sharing ldg"
    );
}

#[test]
fn correct_programs_unaffected_by_exclusion() {
    let vm = vm(true);
    let thread = vm.attach_thread("t");
    let env = vm.env(&thread);
    let a = env.new_int_array_from(&[5; 64]).unwrap();
    let sum = env
        .call_native("sum", NativeKind::Normal, |env| {
            let elems = env.get_primitive_array_critical(&a)?;
            let mem = env.native_mem();
            let mut s = 0;
            for i in 0..64 {
                s += elems.read_i32(&mem, i)?;
            }
            env.release_primitive_array_critical(&a, elems, ReleaseMode::CopyBack)?;
            Ok(s)
        })
        .unwrap();
    assert_eq!(sum, 320);
}

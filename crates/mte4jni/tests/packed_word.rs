//! Property tests for the packed atomic entry word: the bit layout
//! round-trips every field, and no sequence of protocol transitions can
//! republish (`Live`) a generation that an earlier lifetime retired —
//! the invariant the `Borrow` generation check relies on to close the
//! free/re-acquire ABA window.

use std::collections::HashSet;

use mte4jni::entry::{self, EntryState, GENERATION_MASK};
use mte_sim::Tag;
use proptest::prelude::*;

proptest! {
    #[test]
    fn pack_round_trips_arbitrary_fields(
        rc in any::<u32>(),
        tag in 0u8..16,
        state_ix in 0usize..3,
        generation in 0u64..=GENERATION_MASK,
    ) {
        let state = [EntryState::Free, EntryState::Live, EntryState::Busy][state_ix];
        let word = entry::pack(rc, Tag::from_low_bits(tag), state, generation);
        prop_assert_eq!(entry::refcount(word), rc);
        prop_assert_eq!(entry::tag(word), Tag::from_low_bits(tag));
        prop_assert_eq!(entry::state(word), state);
        prop_assert_eq!(entry::generation(word), generation);
    }

    /// Model state machine: arbitrary choices drive one entry word
    /// through the transition functions exactly as the table's CAS loop
    /// would. A generation is *retired* once its lifetime ends (teardown
    /// completes, or a fresh attempt aborts); from then on no reachable
    /// word may ever be `Live` under it again.
    #[test]
    fn transitions_never_republish_a_retired_generation(
        choices in prop::collection::vec(any::<u8>(), 1..300),
    ) {
        let mut word = 0u64;
        let mut retired: HashSet<u64> = HashSet::new();
        // Distinguishes a Busy slot opened by begin_fresh from one
        // opened by begin_teardown.
        let mut fresh = false;
        let check_live = |word: u64, retired: &HashSet<u64>| {
            if entry::state(word) == EntryState::Live {
                assert!(
                    !retired.contains(&entry::generation(word)),
                    "word republished retired generation {}",
                    entry::generation(word)
                );
            }
        };
        for c in choices {
            match entry::state(word) {
                EntryState::Free => {
                    word = entry::begin_fresh(word);
                    fresh = true;
                }
                EntryState::Busy if fresh => {
                    if c % 2 == 0 {
                        word = entry::commit_fresh(
                            word,
                            Tag::from_low_bits(1 + (c >> 1) % 15),
                        );
                    } else {
                        // A failed attempt retires its generation too: no
                        // Borrow was ever minted under it, and none may be.
                        retired.insert(entry::generation(word));
                        word = entry::abort_fresh(word);
                    }
                }
                EntryState::Busy => {
                    if c % 2 == 0 {
                        retired.insert(entry::generation(word));
                        word = entry::complete_teardown(word);
                    } else {
                        word = entry::abort_teardown(word);
                    }
                }
                EntryState::Live => {
                    let rc = entry::refcount(word);
                    if c % 2 == 0 && rc < 1000 {
                        word = entry::add_ref(word);
                    } else if rc > 1 {
                        word = entry::drop_ref(word);
                    } else {
                        word = entry::begin_teardown(word);
                        fresh = false;
                    }
                }
            }
            check_live(word, &retired);
        }
    }
}

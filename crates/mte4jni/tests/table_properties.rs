//! Property tests for the reference-counted tag tables: any interleaved
//! sequence of acquires and releases over a handful of objects must
//! match a trivial sequential reference-count model, on both locking
//! schemes.

use std::collections::HashMap;
use std::sync::Arc;

use mte4jni::{GlobalLockTable, Locking, ReleaseOutcome, TagTable, TwoTierTable};
use mte_sim::{MemoryConfig, MteThread, Tag, TaggedMemory, TaggedPtr};
use proptest::prelude::*;

const BASE: u64 = 0x7a00_0000_0000;
const OBJECTS: usize = 4;
const OBJ_STRIDE: u64 = 0x100;
const OBJ_LEN: u64 = 64;

fn setup() -> (Arc<TaggedMemory>, MteThread) {
    let mem = TaggedMemory::new(MemoryConfig {
        base: BASE,
        size: 1 << 20,
    });
    mem.mprotect_mte(BASE, 1 << 20, true).unwrap();
    (mem, MteThread::with_seed("prop", 0x7ab1e))
}

fn table_for(locking: Locking) -> Box<dyn TagTable> {
    match locking {
        Locking::TwoTier => Box::new(TwoTierTable::new(16)),
        Locking::Global => Box::new(GlobalLockTable::new()),
    }
}

fn obj_range(i: usize) -> (TaggedPtr, u64) {
    let addr = BASE + OBJ_STRIDE * i as u64;
    (TaggedPtr::from_addr(addr), addr + OBJ_LEN)
}

/// Drives `ops` (object index, is_release) against a real table and the
/// model; returns an error message on the first divergence.
fn check_against_model(locking: Locking, ops: &[(usize, bool)]) -> Result<(), String> {
    let (mem, thread) = setup();
    let table = table_for(locking);
    // The model: per-object reference count and live tag.
    let mut counts: HashMap<usize, u32> = HashMap::new();
    let mut tags: HashMap<usize, Tag> = HashMap::new();

    for (step, &(obj, is_release)) in ops.iter().enumerate() {
        let (begin, end) = obj_range(obj);
        let count = counts.entry(obj).or_insert(0);
        if is_release {
            let outcome = table
                .release(&mem, begin, end)
                .map_err(|e| format!("step {step}: release error {e}"))?;
            match (*count, outcome) {
                // Never-acquired (or fully released) objects are not the
                // table's problem: Algorithm 2's early-out.
                (0, ReleaseOutcome::NotTracked) => {}
                (1, ReleaseOutcome::Freed) => {
                    *count = 0;
                    tags.remove(&obj);
                    // The tag must be re-zeroed exactly at count zero.
                    let seen = mem.ldg(begin).map_err(|e| format!("step {step}: {e}"))?;
                    if !seen.is_untagged() {
                        return Err(format!("step {step}: tag {seen:?} survived Freed"));
                    }
                }
                (n, ReleaseOutcome::Decremented { remaining }) if n > 1 => {
                    // The count never underflows: remaining == n - 1.
                    if remaining != n - 1 {
                        return Err(format!(
                            "step {step}: count {n} decremented to {remaining}"
                        ));
                    }
                    *count = n - 1;
                }
                (n, outcome) => {
                    return Err(format!(
                        "step {step}: model count {n} but table said {outcome:?}"
                    ));
                }
            }
        } else {
            let acq = table
                .acquire(&mem, &thread, begin, end)
                .map_err(|e| format!("step {step}: acquire error {e}"))?;
            if acq.shared != (*count > 0) {
                return Err(format!(
                    "step {step}: model count {count} but shared={}",
                    acq.shared
                ));
            }
            if let Some(&live) = tags.get(&obj) {
                // Concurrent (here: overlapping) getters observe one tag.
                if acq.tag != live {
                    return Err(format!(
                        "step {step}: second acquire saw {:?}, first saw {live:?}",
                        acq.tag
                    ));
                }
            } else {
                tags.insert(obj, acq.tag);
            }
            let seen = mem.ldg(begin).map_err(|e| format!("step {step}: {e}"))?;
            if seen != acq.tag {
                return Err(format!(
                    "step {step}: memory holds {seen:?}, acquire returned {:?}",
                    acq.tag
                ));
            }
            *count += 1;
        }
    }

    let live = counts.values().filter(|&&c| c > 0).count();
    if table.tracked_objects() != live {
        return Err(format!(
            "end: model has {live} live objects, table tracks {}",
            table.tracked_objects()
        ));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Any acquire/release interleaving matches the sequential model on
    /// both locking schemes: no underflow, `Freed` exactly at the last
    /// release, `NotTracked` for never-acquired addresses.
    #[test]
    fn tables_match_the_reference_count_model(
        ops in prop::collection::vec((0usize..OBJECTS, any::<bool>()), 0..120),
    ) {
        for locking in [Locking::TwoTier, Locking::Global] {
            if let Err(msg) = check_against_model(locking, &ops) {
                panic!("{locking:?}: {msg}");
            }
        }
    }

    /// Releasing addresses that were never acquired — including addresses
    /// interleaved between real objects — is always `NotTracked` and
    /// never disturbs live entries.
    #[test]
    fn never_acquired_addresses_release_as_not_tracked(
        live in 0usize..OBJECTS,
        strays in prop::collection::vec(0u64..32, 1..16),
    ) {
        for locking in [Locking::TwoTier, Locking::Global] {
            let (mem, thread) = setup();
            let table = table_for(locking);
            let (begin, end) = obj_range(live);
            let acq = table.acquire(&mem, &thread, begin, end).unwrap();
            for &s in &strays {
                // Offset by granules: never equal to a tracked begin.
                let addr = BASE + OBJ_STRIDE * OBJECTS as u64 + 16 * s;
                let stray = TaggedPtr::from_addr(addr);
                let outcome = table.release(&mem, stray, addr + OBJ_LEN).unwrap();
                prop_assert_eq!(outcome, ReleaseOutcome::NotTracked);
            }
            prop_assert_eq!(table.tracked_objects(), 1);
            prop_assert_eq!(mem.ldg(begin).unwrap(), acq.tag);
            prop_assert_eq!(table.release(&mem, begin, end).unwrap(), ReleaseOutcome::Freed);
        }
    }
}

// Exhaustively check the underflow edge: double-release after a single
// acquire must hit NotTracked, not wrap the count.
#[test]
fn double_release_never_underflows() {
    for locking in [Locking::TwoTier, Locking::Global] {
        let (mem, thread) = setup();
        let table = table_for(locking);
        let (begin, end) = obj_range(0);
        table.acquire(&mem, &thread, begin, end).unwrap();
        assert_eq!(
            table.release(&mem, begin, end).unwrap(),
            ReleaseOutcome::Freed
        );
        for _ in 0..3 {
            assert_eq!(
                table.release(&mem, begin, end).unwrap(),
                ReleaseOutcome::NotTracked,
                "{locking:?}: release after Freed must be NotTracked"
            );
        }
        assert_eq!(table.tracked_objects(), 0);
    }
}

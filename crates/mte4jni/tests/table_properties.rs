//! Property tests for the reference-counted tag tables: any interleaved
//! sequence of acquires and releases over a handful of objects must
//! match a trivial sequential reference-count model, on all three
//! backends (lock-free, two-tier, global-lock).

use std::collections::HashMap;
use std::sync::Arc;

use mte4jni::{Borrow, Release, ReleaseOutcome, TableBackend, TableConfig, TagTable};
use mte_sim::{MemoryConfig, MteThread, Tag, TaggedMemory, TaggedPtr};
use proptest::prelude::*;

const BASE: u64 = 0x7a00_0000_0000;
const OBJECTS: usize = 4;
const OBJ_STRIDE: u64 = 0x100;
const OBJ_LEN: u64 = 64;

const BACKENDS: [TableBackend; 3] = [
    TableBackend::LockFree,
    TableBackend::TwoTier,
    TableBackend::Global,
];

fn setup() -> (Arc<TaggedMemory>, MteThread) {
    let mem = TaggedMemory::new(MemoryConfig {
        base: BASE,
        size: 1 << 20,
    });
    mem.mprotect_mte(BASE, 1 << 20, true).unwrap();
    (mem, MteThread::with_seed("prop", 0x7ab1e))
}

fn table_for(backend: TableBackend) -> Box<dyn TagTable> {
    // Stash off: these properties pin the eager release protocol
    // shared by all three backends; the lock-free borrow stash has its
    // own unit and stress coverage.
    TableConfig {
        backend,
        borrow_stash: false,
        ..TableConfig::default()
    }
    .build()
}

fn obj_range(i: usize) -> (TaggedPtr, u64) {
    let addr = BASE + OBJ_STRIDE * i as u64;
    (TaggedPtr::from_addr(addr), addr + OBJ_LEN)
}

/// Drives `ops` (object index, is_release) against a real table and the
/// model; returns an error message on the first divergence.
fn check_against_model(backend: TableBackend, ops: &[(usize, bool)]) -> Result<(), String> {
    let (mem, thread) = setup();
    let table = table_for(backend);
    // The model: per-object stack of live borrow tokens and live tag.
    let mut borrows: HashMap<usize, Vec<Borrow>> = HashMap::new();
    let mut tags: HashMap<usize, Tag> = HashMap::new();

    for (step, &(obj, is_release)) in ops.iter().enumerate() {
        let (begin, end) = obj_range(obj);
        let held = borrows.entry(obj).or_default();
        if is_release {
            match held.pop() {
                // Never-acquired (or fully released) objects are not the
                // table's problem: Algorithm 2's early-out, reachable only
                // through the untyped escape hatch.
                None => {
                    let outcome = table
                        .release_raw(&mem, begin, end)
                        .map_err(|e| format!("step {step}: stray release error {e}"))?;
                    if outcome != ReleaseOutcome::NotTracked {
                        return Err(format!(
                            "step {step}: model count 0 but table said {outcome:?}"
                        ));
                    }
                }
                Some(borrow) => {
                    let n = held.len() as u32 + 1;
                    let release = table
                        .release(&mem, borrow)
                        .map_err(|e| format!("step {step}: release error {e}"))?;
                    match (n, release) {
                        (1, Release::Freed) => {
                            tags.remove(&obj);
                            // The tag must be re-zeroed exactly at count zero.
                            let seen =
                                mem.ldg(begin).map_err(|e| format!("step {step}: {e}"))?;
                            if !seen.is_untagged() {
                                return Err(format!("step {step}: tag {seen:?} survived Freed"));
                            }
                        }
                        (n, Release::Shared { remaining }) if n > 1 => {
                            // The count never underflows: remaining == n - 1.
                            if remaining != n - 1 {
                                return Err(format!(
                                    "step {step}: count {n} decremented to {remaining}"
                                ));
                            }
                        }
                        (n, release) => {
                            return Err(format!(
                                "step {step}: model count {n} but table said {release:?}"
                            ));
                        }
                    }
                }
            }
        } else {
            let borrow = table
                .acquire(&mem, &thread, begin, end)
                .map_err(|e| format!("step {step}: acquire error {e}"))?;
            if borrow.shared() == held.is_empty() {
                return Err(format!(
                    "step {step}: model count {} but shared={}",
                    held.len(),
                    borrow.shared()
                ));
            }
            if let Some(&live) = tags.get(&obj) {
                // Concurrent (here: overlapping) getters observe one tag.
                if borrow.tag() != live {
                    return Err(format!(
                        "step {step}: second acquire saw {:?}, first saw {live:?}",
                        borrow.tag()
                    ));
                }
            } else {
                tags.insert(obj, borrow.tag());
            }
            let seen = mem.ldg(begin).map_err(|e| format!("step {step}: {e}"))?;
            if seen != borrow.tag() {
                return Err(format!(
                    "step {step}: memory holds {seen:?}, acquire returned {:?}",
                    borrow.tag()
                ));
            }
            held.push(borrow);
        }
    }

    let live = borrows.values().filter(|b| !b.is_empty()).count();
    if table.tracked_objects() != live {
        return Err(format!(
            "end: model has {live} live objects, table tracks {}",
            table.tracked_objects()
        ));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Any acquire/release interleaving matches the sequential model on
    /// all backends: no underflow, `Freed` exactly at the last release,
    /// `NotTracked` for never-acquired addresses.
    #[test]
    fn tables_match_the_reference_count_model(
        ops in prop::collection::vec((0usize..OBJECTS, any::<bool>()), 0..120),
    ) {
        for backend in BACKENDS {
            if let Err(msg) = check_against_model(backend, &ops) {
                panic!("{backend:?}: {msg}");
            }
        }
    }

    /// Releasing addresses that were never acquired — including addresses
    /// interleaved between real objects — is always `NotTracked` and
    /// never disturbs live entries.
    #[test]
    fn never_acquired_addresses_release_as_not_tracked(
        live in 0usize..OBJECTS,
        strays in prop::collection::vec(0u64..32, 1..16),
    ) {
        for backend in BACKENDS {
            let (mem, thread) = setup();
            let table = table_for(backend);
            let (begin, end) = obj_range(live);
            let borrow = table.acquire(&mem, &thread, begin, end).unwrap();
            let tag = borrow.tag();
            for &s in &strays {
                // Offset by granules: never equal to a tracked begin.
                let addr = BASE + OBJ_STRIDE * OBJECTS as u64 + 16 * s;
                let stray = TaggedPtr::from_addr(addr);
                let outcome = table.release_raw(&mem, stray, addr + OBJ_LEN).unwrap();
                prop_assert_eq!(outcome, ReleaseOutcome::NotTracked);
            }
            prop_assert_eq!(table.tracked_objects(), 1);
            prop_assert_eq!(mem.ldg(begin).unwrap(), tag);
            assert!(matches!(table.release(&mem, borrow), Ok(Release::Freed)));
        }
    }
}

// Exhaustively check the underflow edge: double-release after a single
// acquire must hit NotTracked, not wrap the count. The typed API makes
// this a compile error (the token is consumed); the raw escape hatch is
// where the edge still exists.
#[test]
fn double_release_never_underflows() {
    for backend in BACKENDS {
        let (mem, thread) = setup();
        let table = table_for(backend);
        let (begin, end) = obj_range(0);
        let borrow = table.acquire(&mem, &thread, begin, end).unwrap();
        assert!(matches!(table.release(&mem, borrow), Ok(Release::Freed)));
        for _ in 0..3 {
            assert_eq!(
                table.release_raw(&mem, begin, end).unwrap(),
                ReleaseOutcome::NotTracked,
                "{backend:?}: release after Freed must be NotTracked"
            );
        }
        assert_eq!(table.tracked_objects(), 0);
    }
}

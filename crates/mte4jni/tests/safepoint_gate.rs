//! Regression: thread-exit stash backstops racing an in-flight
//! compaction.
//!
//! A thread's TLS stash `Drop` backstop runs at genuine thread death,
//! outside any scheduler and outside the collector's world gate. Before
//! the table grew its safepoint gate, a backstop could zero a tag while
//! the compactor was re-tagging the same region under its exclusive
//! world hold. This test keeps a compacting collector cycling while
//! waves of short-lived threads park release credits and exit, and then
//! asserts the quiescent state every layer agrees on.

use std::sync::Arc;
use std::time::Duration;

use art_heap::HeapConfig;
use jni_rt::{NativeKind, Protection, ReleaseMode, Vm};
use mte4jni::Mte4Jni;
use mte_sim::{Tag, TcfMode};

#[test]
fn thread_exit_backstop_never_interleaves_with_compaction() {
    let scheme = Arc::new(Mte4Jni::new());
    let vm = Vm::builder()
        .heap_config(HeapConfig::mte4jni())
        .check_mode(TcfMode::Sync)
        .protection(scheme.clone())
        .build();
    let a = {
        let t = vm.attach_thread("setup");
        let env = vm.env(&t);
        env.new_int_array_from(&[3; 64]).unwrap()
    };

    // A compacting collector cycling every few hundred microseconds:
    // each cycle takes the exclusive world hold, raises the table's
    // safepoint gate, purges every unpinned candidate, and slides
    // objects down (rehoming their entries).
    let gc = vm.start_compacting_gc(Duration::from_micros(200));

    // Waves of short-lived threads: each parks its final release credit
    // in the TLS stash and exits without flushing, so the backstop runs
    // at thread death — concurrently with whatever phase the collector
    // happens to be in. The safepoint gate must hold the backstop's
    // credit return (and its tag zeroing) out of the move/re-tag pass.
    for wave in 0..16 {
        std::thread::scope(|s| {
            for i in 0..4 {
                let vm = &vm;
                let a = a.clone();
                s.spawn(move || {
                    let t = vm.attach_thread(format!("w{wave}-{i}"));
                    let env = vm.env(&t);
                    for _ in 0..8 {
                        env.call_native("reader", NativeKind::Normal, |env| {
                            let elems = env.get_primitive_array_critical(&a)?;
                            let mem = env.native_mem();
                            let mut sum = 0;
                            for j in 0..64 {
                                sum += elems.read_i32(&mem, j)?;
                            }
                            assert_eq!(sum, 3 * 64);
                            env.release_primitive_array_critical(
                                &a,
                                elems,
                                ReleaseMode::CopyBack,
                            )
                        })
                        .unwrap();
                    }
                });
            }
        });
    }

    let report = gc.stop();
    assert!(report.cycles > 0, "the collector actually ran");
    assert!(report.faults.is_empty(), "GC scans never fault under MTE4JNI");

    // One final safepoint from the observing thread: `thread::scope`
    // does not wait for TLS destructors, so the last wave's backstops
    // may still be in flight — the compaction's purge either retires
    // their entries first (the backstops then see their generation die)
    // or waits until they have drained.
    vm.heap().compact();
    assert_eq!(scheme.stats().tracked_objects, 0, "no stale entries survive");
    assert_eq!(
        vm.heap().memory().raw_tag_at(a.data_addr()).unwrap(),
        Tag::UNTAGGED
    );

    // The funnel conservation law holds across every backstop/purge race.
    let stats = scheme.stats();
    let counter = |name: &str| {
        scheme
            .counters()
            .iter()
            .find(|(n, _)| *n == name)
            .map_or(0, |&(_, v)| v)
    };
    assert_eq!(
        stats.acquires - stats.shared_acquires,
        stats.tag_frees
            + counter("atomic_stash_flush_frees")
            + counter("safepoint_purge_frees"),
        "funnel conservation law"
    );
}

//! Differential oracle: the lock-free [`AtomicEntryTable`] must be
//! observationally identical — bit for bit — to the paper-faithful
//! [`TwoTierTable`] over arbitrary acquire/release sequences: same tags
//! (the `irg` streams are same-seeded), same shared flags, same release
//! outcomes, same tracked counts, and identical final granule tags.

use std::sync::Arc;

use mte4jni::{
    AtomicEntryTable, Borrow, Release, ReleaseOutcome, TableConfig, TagTable, TwoTierTable,
};
use mte_sim::{MemoryConfig, MteThread, TaggedMemory, TaggedPtr};

const BASE: u64 = 0x7a00_0000_0000;
const OBJECTS: u64 = 5;
const STRIDE: u64 = 0x100;
const LEN: u64 = 64;

fn lcg(x: &mut u64) -> u64 {
    *x = x
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *x >> 33
}

fn memory() -> Arc<TaggedMemory> {
    let mem = TaggedMemory::new(MemoryConfig {
        base: BASE,
        size: 1 << 20,
    });
    mem.mprotect_mte(BASE, 1 << 20, true).unwrap();
    mem
}

fn release_pair(
    a: &AtomicEntryTable,
    b: &TwoTierTable,
    mem_a: &TaggedMemory,
    mem_b: &TaggedMemory,
    (ba, bb): (Borrow, Borrow),
    context: &str,
) {
    let ra = a.release(mem_a, ba).unwrap();
    let rb = b.release(mem_b, bb).unwrap();
    match (&ra, &rb) {
        (Release::Freed, Release::Freed) => {}
        (Release::Shared { remaining: x }, Release::Shared { remaining: y }) if x == y => {}
        _ => panic!("{context}: release outcomes diverged: {ra:?} vs {rb:?}"),
    }
}

#[test]
fn lock_free_matches_two_tier_bit_for_bit() {
    for seed in 0..8u64 {
        let (mem_a, mem_b) = (memory(), memory());
        let ta = MteThread::with_seed("diff", 0xD1FF ^ seed);
        let tb = MteThread::with_seed("diff", 0xD1FF ^ seed);
        // Stash off: this oracle pins the eager protocol, where every
        // release reaches the shared entry (the borrow stash's deferred
        // semantics are covered by its own unit and stress tests).
        let a = AtomicEntryTable::from_config(&TableConfig {
            borrow_stash: false,
            ..TableConfig::default()
        });
        let b = TwoTierTable::new(16);
        let mut stacks: Vec<Vec<(Borrow, Borrow)>> =
            (0..OBJECTS).map(|_| Vec::new()).collect();
        let mut rng = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        for step in 0..400 {
            let obj = (lcg(&mut rng) % OBJECTS) as usize;
            let addr = BASE + STRIDE * obj as u64;
            let begin = TaggedPtr::from_addr(addr);
            let end = addr + LEN;
            if lcg(&mut rng) % 2 == 1 {
                match stacks[obj].pop() {
                    Some(pair) => release_pair(
                        &a,
                        &b,
                        &mem_a,
                        &mem_b,
                        pair,
                        &format!("seed {seed} step {step}"),
                    ),
                    None => {
                        // Both tables agree strays are not their problem.
                        assert_eq!(
                            a.release_raw(&mem_a, begin, end).unwrap(),
                            ReleaseOutcome::NotTracked
                        );
                        assert_eq!(
                            b.release_raw(&mem_b, begin, end).unwrap(),
                            ReleaseOutcome::NotTracked
                        );
                    }
                }
            } else {
                let ba = a.acquire(&mem_a, &ta, begin, end).unwrap();
                let bb = b.acquire(&mem_b, &tb, begin, end).unwrap();
                assert_eq!(
                    ba.tag(),
                    bb.tag(),
                    "seed {seed} step {step}: tags diverged"
                );
                assert_eq!(
                    ba.shared(),
                    bb.shared(),
                    "seed {seed} step {step}: shared flags diverged"
                );
                stacks[obj].push((ba, bb));
            }
            assert_eq!(
                a.tracked_objects(),
                b.tracked_objects(),
                "seed {seed} step {step}: tracked counts diverged"
            );
        }
        // Drain the remaining borrows, then the final tag state must be
        // identical granule by granule (and fully untagged).
        for stack in &mut stacks {
            while let Some(pair) = stack.pop() {
                release_pair(&a, &b, &mem_a, &mem_b, pair, &format!("seed {seed} drain"));
            }
        }
        assert_eq!(a.tracked_objects(), 0);
        assert_eq!(b.tracked_objects(), 0);
        for g in 0..(OBJECTS * STRIDE / 16) {
            let addr = BASE + 16 * g;
            let (tag_a, tag_b) = (
                mem_a.raw_tag_at(addr).unwrap(),
                mem_b.raw_tag_at(addr).unwrap(),
            );
            assert_eq!(tag_a, tag_b, "seed {seed}: final tag at {addr:#x} diverged");
            assert!(tag_a.is_untagged(), "seed {seed}: tag leaked at {addr:#x}");
        }
    }
}

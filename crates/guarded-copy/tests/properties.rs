//! Property-based tests for the guarded-copy baseline.

use std::sync::Arc;

use guarded_copy::{adler32, canary_byte, fill_canary, first_corruption, GuardedCopy, GuardedCopyConfig};
use jni_rt::{NativeKind, ReleaseMode, Vm};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Adler-32 over a concatenation equals the classic incremental
    /// recurrence applied to the second part (sanity of the modulus
    /// handling).
    #[test]
    fn adler_matches_bytewise_recurrence(data in prop::collection::vec(any::<u8>(), 0..4096)) {
        let mut a = 1u32;
        let mut b = 0u32;
        for &byte in &data {
            a = (a + u32::from(byte)) % 65521;
            b = (b + a) % 65521;
        }
        prop_assert_eq!(adler32(&data), (b << 16) | a);
    }

    /// Any single flipped byte in a canary zone is found at its exact
    /// offset; untouched zones verify clean for any phase.
    #[test]
    fn canary_locates_any_single_flip(
        len in 1usize..600,
        phase in 0usize..64,
        flip in any::<prop::sample::Index>(),
        xor in 1u8..=255,
    ) {
        let mut zone = vec![0u8; len];
        fill_canary(&mut zone, phase);
        prop_assert_eq!(first_corruption(&zone, phase), None);
        let at = flip.index(len);
        zone[at] ^= xor;
        prop_assert_eq!(first_corruption(&zone, phase), Some(at));
        prop_assert_ne!(zone[at], canary_byte(phase + at));
    }

    /// End to end: for any array content, a clean get/modify/release
    /// session copies the native-side writes back exactly.
    #[test]
    fn copy_back_is_exact_for_any_content(
        values in prop::collection::vec(any::<i32>(), 1..64),
        updates in prop::collection::vec((any::<prop::sample::Index>(), any::<i32>()), 0..16),
    ) {
        let vm = Vm::builder().protection(Arc::new(GuardedCopy::new())).build();
        let thread = vm.attach_thread("prop");
        let env = vm.env(&thread);
        let a = env.new_int_array_from(&values).unwrap();
        let mut expected = values.clone();
        env.call_native("session", NativeKind::Normal, |env| {
            let elems = env.get_primitive_array_critical(&a)?;
            let mem = env.native_mem();
            for (idx, v) in &updates {
                let i = idx.index(expected.len());
                expected[i] = *v;
                elems.write_i32(&mem, i as isize, *v)?;
            }
            env.release_primitive_array_critical(&a, elems, ReleaseMode::CopyBack)
        }).unwrap();
        prop_assert_eq!(vm.heap().int_array_as_vec(&thread, &a).unwrap(), expected);
    }

    /// For any red-zone size, a write at any in-zone offset is detected
    /// and a write beyond both zones is missed — the §2.3 boundary, exact.
    #[test]
    fn detection_boundary_is_exactly_the_zone(
        rz_pow in 4u32..10, // 16..512 bytes
        beyond in 1usize..64,
    ) {
        let rz = 1usize << rz_pow;
        let scheme = Arc::new(GuardedCopy::with_config(GuardedCopyConfig { red_zone_len: rz }));
        let vm = Vm::builder().protection(scheme).build();
        let thread = vm.attach_thread("prop");
        let env = vm.env(&thread);
        let a = env.new_byte_array(8).unwrap();

        // Last in-zone byte: detected.
        let r = env.call_native("inzone", NativeKind::Normal, |env| {
            let elems = env.get_primitive_array_critical(&a)?;
            let mem = env.native_mem();
            let off = (8 + rz - 1) as isize;
            let old = elems.read_u8(&mem, off)?;
            elems.write_u8(&mem, off, old ^ 0x5A)?;
            env.release_primitive_array_critical(&a, elems, ReleaseMode::CopyBack)
        });
        prop_assert!(r.is_err(), "rz {rz}: last zone byte must be caught");

        // First byte past the zone: missed (fresh array; the previous
        // session consumed its shadow block).
        let b = env.new_byte_array(8).unwrap();
        let r = env.call_native("pastzone", NativeKind::Normal, |env| {
            let elems = env.get_primitive_array_critical(&b)?;
            let mem = env.native_mem();
            elems.write_u8(&mem, (8 + rz + beyond - 1) as isize, 0xEE)?;
            env.release_primitive_array_critical(&b, elems, ReleaseMode::CopyBack)
        });
        prop_assert!(r.is_ok(), "rz {rz}: byte {beyond} past the zone escapes");
    }
}

//! The red-zone canary pattern.
//!
//! ART prefills its guard regions with a repeating human-readable string
//! so that corrupted zones are recognizable in memory dumps; we do the
//! same (paper §2.3: "two red zones, prefilled with a specific repeating
//! canary pattern string").

/// The repeating canary text.
pub const CANARY_PATTERN: &[u8] = b"GuardedCopy red zone canary! ";

/// The canary byte expected at absolute red-zone offset `i`.
pub fn canary_byte(i: usize) -> u8 {
    CANARY_PATTERN[i % CANARY_PATTERN.len()]
}

/// Fills `buf` with the canary pattern, phase-aligned so byte `i` of the
/// buffer holds [`canary_byte`]`(phase + i)`.
pub fn fill_canary(buf: &mut [u8], phase: usize) {
    for (i, b) in buf.iter_mut().enumerate() {
        *b = canary_byte(phase + i);
    }
}

/// Returns the index of the first byte in `buf` that no longer matches the
/// canary pattern at `phase`, or `None` if the zone is intact.
pub fn first_corruption(buf: &[u8], phase: usize) -> Option<usize> {
    buf.iter()
        .enumerate()
        .find(|&(i, &b)| b != canary_byte(phase + i))
        .map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_then_check_is_clean() {
        for phase in [0usize, 1, 7, 29, 100] {
            let mut buf = vec![0u8; 137];
            fill_canary(&mut buf, phase);
            assert_eq!(first_corruption(&buf, phase), None, "phase {phase}");
        }
    }

    #[test]
    fn single_byte_corruption_located_exactly() {
        let mut buf = vec![0u8; 512];
        fill_canary(&mut buf, 0);
        buf[137] ^= 0xFF;
        assert_eq!(first_corruption(&buf, 0), Some(137));
    }

    #[test]
    fn earliest_corruption_wins() {
        let mut buf = vec![0u8; 64];
        fill_canary(&mut buf, 3);
        buf[40] ^= 1;
        buf[12] ^= 1;
        assert_eq!(first_corruption(&buf, 3), Some(12));
    }

    #[test]
    fn phase_mismatch_is_detected() {
        let mut buf = vec![0u8; 64];
        fill_canary(&mut buf, 0);
        // Checking with the wrong phase must not report clean.
        assert!(first_corruption(&buf, 1).is_some());
    }

    #[test]
    fn empty_zone_is_trivially_clean() {
        assert_eq!(first_corruption(&[], 0), None);
    }
}

//! Adler-32, as ART's `GuardedCopy` uses to checksum buffer contents.

const MOD_ADLER: u32 = 65521;
/// Largest n such that 255 n (n+1) / 2 + (n+1) (MOD_ADLER-1) < 2^32,
/// letting the inner loop defer the modulo (zlib's NMAX).
const NMAX: usize = 5552;

/// Computes the Adler-32 checksum of `data`.
///
/// ```
/// use guarded_copy::adler32;
/// assert_eq!(adler32(b""), 1);
/// assert_eq!(adler32(b"Wikipedia"), 0x11E6_0398);
/// ```
pub fn adler32(data: &[u8]) -> u32 {
    let mut a: u32 = 1;
    let mut b: u32 = 0;
    for chunk in data.chunks(NMAX) {
        for &byte in chunk {
            a += u32::from(byte);
            b += a;
        }
        a %= MOD_ADLER;
        b %= MOD_ADLER;
    }
    (b << 16) | a
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        assert_eq!(adler32(b""), 1);
        assert_eq!(adler32(b"a"), 0x0062_0062);
        assert_eq!(adler32(b"abc"), 0x024d_0127);
        assert_eq!(adler32(b"Wikipedia"), 0x11E6_0398);
    }

    #[test]
    fn sensitive_to_single_byte_change() {
        let mut data = vec![7u8; 1024];
        let before = adler32(&data);
        data[512] ^= 1;
        assert_ne!(adler32(&data), before);
    }

    #[test]
    fn deferred_modulo_matches_naive_on_long_input() {
        // Worst case for overflow: all 0xFF, longer than NMAX.
        let data = vec![0xFFu8; 3 * NMAX + 17];
        let naive = {
            let (mut a, mut b) = (1u64, 0u64);
            for &byte in &data {
                a = (a + u64::from(byte)) % 65521;
                b = (b + a) % 65521;
            }
            ((b as u32) << 16) | a as u32
        };
        assert_eq!(adler32(&data), naive);
    }
}

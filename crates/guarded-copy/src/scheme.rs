//! The guarded-copy [`Protection`] implementation.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

// Via the `sync` facade so the stress harness can schedule around the
// shadow-ledger lock; plain `parking_lot` in release builds.
use mte_sim::sync::Mutex;

use jni_rt::{AbortReport, AcquireOutcome, JniContext, JniError, Protection, ReleaseMode};
use mte_sim::{Backtrace, Frame, TaggedPtr};

use crate::adler::adler32;
use crate::canary::{fill_canary, first_corruption};

/// Configuration for [`GuardedCopy`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GuardedCopyConfig {
    /// Red-zone length in bytes on *each* side of the copy.
    ///
    /// 512 bytes is our stand-in for ART's guard length; the Figure 5
    /// small-array ratios are sensitive to this value, and the bench
    /// harness can sweep it.
    pub red_zone_len: usize,
}

impl Default for GuardedCopyConfig {
    fn default() -> Self {
        GuardedCopyConfig { red_zone_len: 512 }
    }
}

#[derive(Debug)]
struct Shadow {
    block: TaggedPtr,
    block_len: usize,
    payload_len: usize,
    checksum: u32,
}

/// The guarded-copy scheme (ART CheckJNI's `GuardedCopy`).
///
/// Each `Get*` creates an independent shadow copy — concurrent acquirers
/// of the same object each get their own guarded buffer, exactly as in
/// ART, which is why the scheme's Figure 6 multi-thread cost scales with
/// the number of acquisitions.
pub struct GuardedCopy {
    config: GuardedCopyConfig,
    shadows: Mutex<HashMap<u64, Shadow>>,
    acquires: AtomicU64,
    releases: AtomicU64,
    corruptions: AtomicU64,
    abandoned_writes: AtomicU64,
    shadow_bytes: AtomicU64,
    canary_verifies: AtomicU64,
}

impl GuardedCopy {
    /// Creates the scheme with the default red-zone length.
    pub fn new() -> GuardedCopy {
        GuardedCopy::with_config(GuardedCopyConfig::default())
    }

    /// Creates the scheme with an explicit configuration.
    pub fn with_config(config: GuardedCopyConfig) -> GuardedCopy {
        GuardedCopy {
            config,
            shadows: Mutex::new(HashMap::new()),
            acquires: AtomicU64::new(0),
            releases: AtomicU64::new(0),
            corruptions: AtomicU64::new(0),
            abandoned_writes: AtomicU64::new(0),
            shadow_bytes: AtomicU64::new(0),
            canary_verifies: AtomicU64::new(0),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> GuardedCopyConfig {
        self.config
    }

    /// Number of live shadow copies (outstanding acquisitions) — the
    /// stress harness's quiescence oracle.
    pub fn tracked_shadows(&self) -> usize {
        self.shadows.lock().len()
    }

    /// Operation counters.
    pub fn stats(&self) -> GuardedCopyStats {
        GuardedCopyStats {
            acquires: self.acquires.load(Ordering::Relaxed),
            releases: self.releases.load(Ordering::Relaxed),
            corruptions_detected: self.corruptions.load(Ordering::Relaxed),
            abandoned_writes: self.abandoned_writes.load(Ordering::Relaxed),
        }
    }

    fn abort_backtrace(cx: &JniContext<'_>) -> Backtrace {
        // Figure 4a: the report's top frames are the runtime's abort path,
        // not the code that corrupted memory.
        let mut frames = vec![
            Frame::new("abort+180", "libc.so"),
            Frame::new("art::Runtime::Abort(char const*)+1536", "libart.so"),
            Frame::new("art::(anonymous namespace)::ScopedCheck::AbortF+64", "libart.so"),
        ];
        frames.extend(cx.thread.mte().backtrace().frames().iter().cloned());
        Backtrace::from_frames(frames)
    }
}

impl Default for GuardedCopy {
    fn default() -> Self {
        GuardedCopy::new()
    }
}

impl fmt::Debug for GuardedCopy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GuardedCopy")
            .field("config", &self.config)
            .field("stats", &self.stats())
            .finish()
    }
}

impl Protection for GuardedCopy {
    fn name(&self) -> &str {
        "guarded-copy"
    }

    fn on_acquire(
        &self,
        cx: &JniContext<'_>,
        obj: &art_heap::ObjectRef,
    ) -> jni_rt::Result<AcquireOutcome> {
        let rz = self.config.red_zone_len;
        let payload_len = obj.byte_len();
        let total = rz + payload_len + rz;

        // Copy the object payload out of the Java heap (runtime-internal
        // access) and compose [canary | payload | canary].
        let mut block = vec![0u8; total];
        cx.heap.read_payload(obj, &mut block[rz..rz + payload_len])
            .map_err(JniError::from)?;
        let checksum = adler32(&block[rz..rz + payload_len]);
        fill_canary(&mut block[..rz], 0);
        fill_canary(&mut block[rz + payload_len..], 0);

        let block_ptr = cx.heap.native_alloc().alloc(total).map_err(JniError::from)?;
        cx.heap
            .memory()
            .write_bytes_unchecked(block_ptr, &block)
            .map_err(JniError::from)?;

        let user_ptr = block_ptr.wrapping_add(rz as u64);
        self.shadows.lock().insert(
            user_ptr.addr(),
            Shadow {
                block: block_ptr,
                block_len: total,
                payload_len,
                checksum,
            },
        );
        self.acquires.fetch_add(1, Ordering::Relaxed);
        self.shadow_bytes.fetch_add(total as u64, Ordering::Relaxed);
        Ok(AcquireOutcome {
            ptr: user_ptr,
            is_copy: true,
        })
    }

    fn on_release(
        &self,
        cx: &JniContext<'_>,
        obj: &art_heap::ObjectRef,
        ptr: TaggedPtr,
        mode: ReleaseMode,
    ) -> jni_rt::Result<()> {
        let shadow = match mode {
            ReleaseMode::Commit => {
                // Keep the entry: JNI_COMMIT copies back without freeing.
                let shadows = self.shadows.lock();
                let s = shadows
                    .get(&ptr.addr())
                    .ok_or(JniError::StaleRelease { pointer: ptr.raw() })?;
                Shadow {
                    block: s.block,
                    block_len: s.block_len,
                    payload_len: s.payload_len,
                    checksum: s.checksum,
                }
            }
            _ => self
                .shadows
                .lock()
                .remove(&ptr.addr())
                .ok_or(JniError::StaleRelease { pointer: ptr.raw() })?,
        };

        let rz = self.config.red_zone_len;
        let mut block = vec![0u8; shadow.block_len];
        cx.heap
            .memory()
            .read_bytes_unchecked(shadow.block, &mut block)
            .map_err(JniError::from)?;

        let free_block = |gc: &GuardedCopy| {
            if mode != ReleaseMode::Commit {
                cx.heap.native_alloc().free(shadow.block, shadow.block_len);
            }
            gc.releases.fetch_add(1, Ordering::Relaxed);
        };

        // (2) of Figure 2: verify both red zones still hold the canary.
        self.canary_verifies.fetch_add(2, Ordering::Relaxed); // front + rear
        let front = first_corruption(&block[..rz], 0);
        let rear = first_corruption(&block[rz + shadow.payload_len..], 0);
        if front.is_some() || rear.is_some() {
            self.corruptions.fetch_add(1, Ordering::Relaxed);
            let offset = match (front, rear) {
                (Some(i), _) => i as isize - rz as isize,
                (None, Some(i)) => (shadow.payload_len + i) as isize,
                (None, None) => unreachable!(),
            };
            let report = AbortReport {
                message: format!(
                    "use of JNI buffer for {} of length {} corrupted a red zone \
                     (first bad byte at payload offset {}); original checksum {:#010x}",
                    obj.kind().element_type(),
                    shadow.payload_len,
                    offset,
                    shadow.checksum,
                ),
                corruption_offset: Some(offset),
                backtrace: GuardedCopy::abort_backtrace(cx),
            };
            free_block(self);
            return Err(JniError::CheckJniAbort(Box::new(report)));
        }

        let payload = &block[rz..rz + shadow.payload_len];
        match mode {
            ReleaseMode::CopyBack | ReleaseMode::Commit => {
                // (3) of Figure 2: zones intact — update the real object.
                cx.heap.write_payload(obj, payload).map_err(JniError::from)?;
            }
            ReleaseMode::Abort => {
                // JNI_ABORT discards changes; ART logs if there were any.
                if adler32(payload) != shadow.checksum {
                    self.abandoned_writes.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        free_block(self);
        Ok(())
    }

    fn counters(&self) -> Vec<(&'static str, u64)> {
        let s = self.stats();
        vec![
            ("acquires", s.acquires),
            ("releases", s.releases),
            ("corruptions_detected", s.corruptions_detected),
            ("abandoned_writes", s.abandoned_writes),
            ("shadow_bytes", self.shadow_bytes.load(Ordering::Relaxed)),
            ("canary_verifies", self.canary_verifies.load(Ordering::Relaxed)),
        ]
    }
}

/// Operation counters for [`GuardedCopy`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GuardedCopyStats {
    /// Shadow buffers created.
    pub acquires: u64,
    /// Releases processed (including aborted ones).
    pub releases: u64,
    /// Red-zone corruptions detected.
    pub corruptions_detected: u64,
    /// `JNI_ABORT` releases whose buffer had been modified.
    pub abandoned_writes: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use jni_rt::{NativeKind, Vm};
    use std::sync::Arc;

    fn vm() -> Vm {
        Vm::builder().protection(Arc::new(GuardedCopy::new())).build()
    }

    #[test]
    fn clean_session_copies_back() {
        let vm = vm();
        let t = vm.attach_thread("main");
        let env = vm.env(&t);
        let a = env.new_int_array_from(&[1, 2, 3]).unwrap();
        let elems = env.get_primitive_array_critical(&a).unwrap();
        assert!(elems.is_copy(), "guarded copy always copies");
        let mem = env.native_mem();
        elems.write_i32(&mem, 0, 42).unwrap();
        env.release_primitive_array_critical(&a, elems, ReleaseMode::CopyBack)
            .unwrap();
        assert_eq!(vm.heap().int_at(&t, &a, 0).unwrap(), 42);
    }

    #[test]
    fn oob_write_detected_at_release_with_offset() {
        // The paper's §5.2 scenario: 18 ints, write at index 21.
        let vm = vm();
        let t = vm.attach_thread("main");
        let env = vm.env(&t);
        let a = env.new_int_array(18).unwrap();
        let err = env
            .call_native("test_ofb", NativeKind::Normal, |env| {
                let elems = env.get_primitive_array_critical(&a)?;
                let mem = env.native_mem();
                elems.write_i32(&mem, 21, 0xBAD)?; // lands in the rear red zone
                env.release_primitive_array_critical(&a, elems, ReleaseMode::CopyBack)
            })
            .unwrap_err();
        let report = err.as_abort().expect("check-jni abort");
        assert_eq!(report.corruption_offset, Some(21 * 4));
        // Figure 4a: the trace names the runtime's abort path, not test_ofb.
        assert_eq!(&*report.backtrace.top().unwrap().label, "abort+180");
    }

    #[test]
    fn front_red_zone_catches_negative_indices() {
        let vm = vm();
        let t = vm.attach_thread("main");
        let env = vm.env(&t);
        let a = env.new_int_array(8).unwrap();
        let elems = env.get_primitive_array_critical(&a).unwrap();
        let mem = env.native_mem();
        elems.write_i32(&mem, -3, 7).unwrap();
        let err = env
            .release_primitive_array_critical(&a, elems, ReleaseMode::CopyBack)
            .unwrap_err();
        assert_eq!(err.as_abort().unwrap().corruption_offset, Some(-12));
    }

    #[test]
    fn oob_read_is_not_detected() {
        // Limitation 1 (§2.3): reads never change the canary.
        let vm = vm();
        let t = vm.attach_thread("main");
        let env = vm.env(&t);
        let a = env.new_int_array(8).unwrap();
        let elems = env.get_primitive_array_critical(&a).unwrap();
        let mem = env.native_mem();
        let _ = elems.read_i32(&mem, 100).unwrap();
        env.release_primitive_array_critical(&a, elems, ReleaseMode::CopyBack)
            .unwrap();
    }

    #[test]
    fn write_skipping_past_red_zone_is_missed() {
        // Limitation 2 (§2.3): a far write lands beyond the rear zone.
        let scheme = Arc::new(GuardedCopy::with_config(GuardedCopyConfig {
            red_zone_len: 64,
        }));
        let vm = Vm::builder().protection(scheme.clone()).build();
        let t = vm.attach_thread("main");
        let env = vm.env(&t);
        let a = env.new_int_array(4).unwrap();
        let elems = env.get_primitive_array_critical(&a).unwrap();
        let mem = env.native_mem();
        // 4*4 bytes payload + 64 rear zone = 80; index 30 writes at 120.
        elems.write_i32(&mem, 30, 1).unwrap();
        env.release_primitive_array_critical(&a, elems, ReleaseMode::CopyBack)
            .unwrap();
        assert_eq!(scheme.stats().corruptions_detected, 0);
    }

    #[test]
    fn abort_mode_discards_changes_and_counts_them() {
        let scheme = Arc::new(GuardedCopy::new());
        let vm = Vm::builder().protection(scheme.clone()).build();
        let t = vm.attach_thread("main");
        let env = vm.env(&t);
        let a = env.new_int_array_from(&[5, 6]).unwrap();
        let elems = env.get_int_array_elements(&a).unwrap();
        let mem = env.native_mem();
        elems.write_i32(&mem, 0, 99).unwrap();
        env.release_int_array_elements(&a, elems, ReleaseMode::Abort)
            .unwrap();
        assert_eq!(vm.heap().int_at(&t, &a, 0).unwrap(), 5, "JNI_ABORT discards");
        assert_eq!(scheme.stats().abandoned_writes, 1);
    }

    #[test]
    fn commit_copies_back_and_keeps_buffer() {
        let vm = vm();
        let t = vm.attach_thread("main");
        let env = vm.env(&t);
        let a = env.new_int_array_from(&[1]).unwrap();
        let elems = env.get_int_array_elements(&a).unwrap();
        let mem = env.native_mem();
        elems.write_i32(&mem, 0, 2).unwrap();
        let ptr = elems.ptr();
        env.release_int_array_elements(&a, elems, ReleaseMode::Commit)
            .unwrap();
        assert_eq!(vm.heap().int_at(&t, &a, 0).unwrap(), 2);
        // The buffer is still live; write again and do the final release.
        let elems2 = jni_rt::NativeArray::new(ptr, 1, art_heap::PrimitiveType::Int, true);
        elems2.write_i32(&mem, 0, 3).unwrap();
        env.release_int_array_elements(&a, elems2, ReleaseMode::CopyBack)
            .unwrap();
        assert_eq!(vm.heap().int_at(&t, &a, 0).unwrap(), 3);
    }

    #[test]
    fn stale_release_rejected() {
        let vm = vm();
        let t = vm.attach_thread("main");
        let env = vm.env(&t);
        let a = env.new_int_array(2).unwrap();
        let bogus = jni_rt::NativeArray::new(
            TaggedPtr::from_addr(0x1234_5678),
            2,
            art_heap::PrimitiveType::Int,
            true,
        );
        assert!(matches!(
            env.release_int_array_elements(&a, bogus, ReleaseMode::CopyBack),
            Err(JniError::StaleRelease { .. })
        ));
    }

    #[test]
    fn concurrent_acquires_get_distinct_copies() {
        let vm = vm();
        let t = vm.attach_thread("main");
        let env = vm.env(&t);
        let a = env.new_int_array_from(&[1, 2]).unwrap();
        let e1 = env.get_primitive_array_critical(&a).unwrap();
        let e2 = env.get_primitive_array_critical(&a).unwrap();
        assert_ne!(e1.ptr().addr(), e2.ptr().addr());
        env.release_primitive_array_critical(&a, e2, ReleaseMode::CopyBack).unwrap();
        env.release_primitive_array_critical(&a, e1, ReleaseMode::CopyBack).unwrap();
    }

    #[test]
    fn string_interfaces_are_guarded_too() {
        let vm = vm();
        let t = vm.attach_thread("main");
        let env = vm.env(&t);
        let s = env.new_string("abcdef").unwrap();
        let chars = env.get_string_critical(&s).unwrap();
        let mem = env.native_mem();
        chars.write_u16(&mem, 100, 0xDEAD).unwrap(); // OOB into rear zone
        let err = env.release_string_critical(&s, chars).unwrap_err();
        assert!(err.as_abort().is_some());
    }

    #[test]
    fn sweep_spares_a_borrowed_object_so_copy_back_succeeds() {
        let scheme = Arc::new(GuardedCopy::new());
        let vm = Vm::builder().protection(scheme.clone()).build();
        let t = vm.attach_thread("main");
        let env = vm.env(&t);
        let (elems, obj_addr) = {
            let a = env.new_int_array_from(&[1, 2, 3]).unwrap();
            let e = env.get_primitive_array_critical(&a).unwrap();
            (e, a.addr())
            // The only Java handle drops here, mid-borrow.
        };
        let stats = vm.heap().sweep();
        assert_eq!(stats.swept, 0, "pin ledger holds the borrowed object");
        assert_eq!(stats.pinned, 1);
        assert_eq!(scheme.tracked_shadows(), 1, "shadow survives the sweep");
        // Native code keeps writing through the shadow copy...
        let mem = env.native_mem();
        elems.write_i32(&mem, 1, 42).unwrap();
        // ...and the final release copies back into the *original* object,
        // which the sweep left in place instead of recycling its block.
        let a = vm
            .heap()
            .pinned_handle(obj_addr)
            .expect("borrowed object is pinned")
            .as_array()
            .unwrap();
        env.release_primitive_array_critical(&a, elems, ReleaseMode::CopyBack)
            .unwrap();
        assert_eq!(vm.heap().int_at(&t, &a, 1).unwrap(), 42);
        drop(a);
        assert_eq!(vm.heap().sweep().swept, 1, "borrow over: reclaimable");
        assert_eq!(scheme.tracked_shadows(), 0);
    }

    #[test]
    fn native_buffers_are_freed_after_release() {
        let vm = vm();
        let t = vm.attach_thread("main");
        let env = vm.env(&t);
        let a = env.new_int_array(1024).unwrap();
        for _ in 0..100 {
            let elems = env.get_primitive_array_critical(&a).unwrap();
            env.release_primitive_array_critical(&a, elems, ReleaseMode::CopyBack)
                .unwrap();
        }
        assert_eq!(vm.heap().native_alloc().stats().bytes_in_use, 0);
    }
}

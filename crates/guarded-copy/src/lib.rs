//! The **guarded copy** baseline — ART CheckJNI's JNI out-of-bounds
//! detection (paper §2.3, Figure 2).
//!
//! When native code requests a raw pointer to a Java object, the object's
//! payload is copied into a native-heap shadow buffer bracketed by two
//! *red zones* pre-filled with a canary pattern, and the pointer into the
//! copy is returned. On release, the red zones are re-checked: a changed
//! byte means an out-of-bounds write occurred somewhere between get and
//! release, and the runtime aborts with the corruption offset. If the
//! zones are intact, the copy is written back over the original object.
//!
//! The scheme's documented limitations are reproduced faithfully:
//!
//! * only out-of-bounds **writes** are detectable — reads never change the
//!   canaries,
//! * writes that skip past the red zones entirely are missed,
//! * detection happens at **release** time, far from the faulting code, so
//!   the abort backtrace names the runtime's release path (Figure 4a),
//! * the copies and checksums make it expensive: two O(n) copies plus an
//!   O(n) Adler-32 per acquire/release pair.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adler;
mod canary;
mod scheme;

pub use adler::adler32;
pub use canary::{canary_byte, fill_canary, first_corruption, CANARY_PATTERN};
pub use scheme::{GuardedCopy, GuardedCopyConfig, GuardedCopyStats};

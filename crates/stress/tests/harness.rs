//! The harness's own acceptance tests: seed determinism, deadlock
//! detection, fault-injection robustness, and the mutation self-check.

use std::sync::Arc;

use mte_sim::inject::FaultPlan;
use stress::harness::{
    run_containment_schedule, run_lifecycle_schedule, run_schedule, SchemeKind, StressConfig,
};
use stress::sched::{self, trace_hash, Abort};

fn render(result: &stress::harness::ScheduleResult) -> String {
    result
        .report
        .trace
        .iter()
        .map(|ev| ev.to_string())
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn same_seed_replays_the_same_schedule_bit_for_bit() {
    let cfg = StressConfig {
        fault_plan: FaultPlan::uniform(2000),
        ..StressConfig::default()
    };
    for kind in SchemeKind::REAL {
        for seed in [1u64, 42, 0xDEAD_BEEF] {
            let a = run_schedule(kind, seed, &cfg);
            let b = run_schedule(kind, seed, &cfg);
            assert_eq!(
                render(&a),
                render(&b),
                "{}: seed {seed:#x} must replay identically",
                kind.label()
            );
            assert_eq!(trace_hash(&a.report.trace), trace_hash(&b.report.trace));
            assert_eq!(a.violations, b.violations);
            assert_eq!(a.fresh_acquires, b.fresh_acquires);
            assert_eq!(a.injected, b.injected);
        }
    }
}

#[test]
fn different_seeds_explore_different_interleavings() {
    let cfg = StressConfig::default();
    let hashes: Vec<u64> = (0..16)
        .map(|seed| trace_hash(&run_schedule(SchemeKind::TwoTier, seed, &cfg).report.trace))
        .collect();
    let distinct: std::collections::HashSet<_> = hashes.iter().collect();
    // Identical traces for a few seeds are fine; all-16-identical means
    // the seed is not reaching the scheduler.
    assert!(
        distinct.len() > 1,
        "16 seeds produced a single interleaving: {hashes:?}"
    );
}

#[test]
fn real_schemes_survive_contention_and_heavy_fault_injection() {
    // 10% failure at every injection point: the error paths *are* the
    // workload. Any oracle violation here is a rollback bug.
    let cfg = StressConfig {
        fault_plan: FaultPlan::uniform(100_000),
        ..StressConfig::default()
    };
    for kind in SchemeKind::REAL {
        for seed in 0..40u64 {
            let r = run_schedule(kind, seed, &cfg);
            assert!(
                r.violations.is_empty(),
                "{} seed {seed}: {:?}\ntrace:\n{}",
                kind.label(),
                r.violations,
                render(&r)
            );
        }
    }
}

#[test]
fn lifecycle_schedules_replay_bit_for_bit() {
    let cfg = StressConfig {
        fault_plan: FaultPlan::uniform(2000),
        ..StressConfig::default()
    };
    for kind in SchemeKind::REAL {
        for seed in [3u64, 0xBEEF] {
            let a = run_lifecycle_schedule(kind, seed, &cfg);
            let b = run_lifecycle_schedule(kind, seed, &cfg);
            assert_eq!(render(&a), render(&b), "{}: seed {seed:#x}", kind.label());
            assert_eq!(a.violations, b.violations);
            assert_eq!(a.fresh_acquires, b.fresh_acquires);
            assert_eq!(a.freed, b.freed);
        }
    }
}

#[test]
fn lifecycle_schedules_stay_clean_under_fault_injection() {
    // The dead-but-borrowed regression schedule: every seed must keep the
    // sweep away from borrowed objects and leave no entry, pin, or stale
    // tag behind — even with the error paths forced into the state space.
    let cfg = StressConfig {
        fault_plan: FaultPlan::uniform(20_000),
        ..StressConfig::default()
    };
    for kind in SchemeKind::REAL {
        for seed in 0..20u64 {
            let r = run_lifecycle_schedule(kind, seed, &cfg);
            assert!(
                r.violations.is_empty(),
                "{} seed {seed}: {:?}\ntrace:\n{}",
                kind.label(),
                r.violations,
                render(&r)
            );
            assert_eq!(
                r.fresh_acquires, r.freed,
                "{} seed {seed}: every acquire must reach its final release",
                kind.label()
            );
        }
    }
}

/// A mixed per-point plan like the CI containment gate's.
fn mixed_plan() -> FaultPlan {
    FaultPlan {
        irg_exhaust_ppm: 2000,
        ldg_fail_ppm: 2000,
        stg_fail_ppm: 2000,
        alloc_fail_ppm: 2000,
        spurious_check_ppm: 2000,
    }
}

#[test]
fn containment_schedules_replay_bit_for_bit() {
    let cfg = StressConfig {
        fault_plan: mixed_plan(),
        ..StressConfig::default()
    };
    for kind in [SchemeKind::LockFree, SchemeKind::TwoTier, SchemeKind::Global] {
        for seed in [5u64, 0xFACE] {
            let a = run_containment_schedule(kind, seed, &cfg);
            let b = run_containment_schedule(kind, seed, &cfg);
            assert_eq!(render(&a), render(&b), "{}: seed {seed:#x}", kind.label());
            assert_eq!(a.violations, b.violations);
            assert_eq!(a.contained, b.contained);
            assert_eq!(a.degraded_quarantine, b.degraded_quarantine);
            assert_eq!(a.degraded_exhaust, b.degraded_exhaust);
        }
    }
}

#[test]
fn containment_schedules_survive_faults_and_observe_degradation() {
    // The containment oracle: every schedule's VM survives its own
    // out-of-bounds natives plus injected failures with nothing leaked —
    // and across the sweep, faults actually get contained and at least
    // one method is quarantined onto guarded copy.
    let cfg = StressConfig {
        rounds: 4,
        fault_plan: mixed_plan(),
        ..StressConfig::default()
    };
    let mut contained = 0;
    let mut degraded = 0;
    for seed in 0..30u64 {
        let r = run_containment_schedule(SchemeKind::TwoTier, seed, &cfg);
        assert!(
            r.violations.is_empty(),
            "seed {seed}: {:?}\ntrace:\n{}",
            r.violations,
            render(&r)
        );
        contained += r.contained;
        degraded += r.degraded_quarantine;
    }
    assert!(contained > 0, "no schedule contained a fault");
    assert!(degraded > 0, "no schedule quarantined a method");
}

/// Scheduler-hosted differential: workers drive the lock-free table and
/// the two-tier table in lockstep (each paired op under one per-object
/// mutex, with same-seeded `irg` streams), so under every explored
/// interleaving both tables must hand out bit-identical tags, identical
/// shared flags, and identical release outcomes.
#[test]
fn lock_free_matches_two_tier_under_the_scheduler() {
    use mte4jni::{AtomicEntryTable, Release, TableConfig, TagTable, TwoTierTable};
    use mte_sim::sync::{yield_point, Mutex};
    use mte_sim::{MemoryConfig, MteThread, TaggedMemory, TaggedPtr};

    const BASE: u64 = 0x7a00_0000_0000;
    const OBJECTS: usize = 3;
    let memory = || {
        let mem = TaggedMemory::new(MemoryConfig {
            base: BASE,
            size: 1 << 20,
        });
        mem.mprotect_mte(BASE, 1 << 20, true).unwrap();
        mem
    };
    for seed in 0..24u64 {
        let mem_a = memory();
        let mem_b = memory();
        // Stash off: lockstep comparison pins the eager protocol
        // (a parked `Cached` release has no two-tier counterpart).
        let a: Arc<dyn TagTable> = Arc::new(AtomicEntryTable::from_config(&TableConfig {
            borrow_stash: false,
            ..TableConfig::default()
        }));
        let b: Arc<dyn TagTable> = Arc::new(TwoTierTable::new(16));
        let pair_locks: Arc<Vec<Mutex<()>>> =
            Arc::new((0..OBJECTS).map(|_| Mutex::new(())).collect());

        let bodies: Vec<Box<dyn FnOnce() + Send + '_>> = (0..3usize)
            .map(|worker| {
                let (a, b) = (Arc::clone(&a), Arc::clone(&b));
                let (mem_a, mem_b) = (Arc::clone(&mem_a), Arc::clone(&mem_b));
                let pair_locks = Arc::clone(&pair_locks);
                Box::new(move || {
                    let ta = MteThread::with_seed("diff", seed ^ worker as u64);
                    let tb = MteThread::with_seed("diff", seed ^ worker as u64);
                    for round in 0..4 {
                        let obj = (worker + round) % OBJECTS;
                        let addr = BASE + 0x100 * obj as u64;
                        let begin = TaggedPtr::from_addr(addr);
                        let end = addr + 64;
                        let (ba, bb) = {
                            let _g = pair_locks[obj].lock();
                            let ba = a.acquire(&mem_a, &ta, begin, end).unwrap();
                            let bb = b.acquire(&mem_b, &tb, begin, end).unwrap();
                            assert_eq!(ba.tag(), bb.tag(), "seed {seed}: tags diverged");
                            assert_eq!(ba.shared(), bb.shared(), "seed {seed}: shared diverged");
                            (ba, bb)
                        };
                        yield_point("diff-holding");
                        let _g = pair_locks[obj].lock();
                        let ra = a.release(&mem_a, ba).unwrap();
                        let rb = b.release(&mem_b, bb).unwrap();
                        match (&ra, &rb) {
                            (Release::Freed, Release::Freed) => {}
                            (
                                Release::Shared { remaining: x },
                                Release::Shared { remaining: y },
                            ) if x == y => {}
                            _ => panic!("seed {seed}: releases diverged: {ra:?} vs {rb:?}"),
                        }
                    }
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();

        let report = sched::run(seed, 20_000, bodies);
        assert!(
            report.clean() && report.panics.is_empty(),
            "seed {seed}: {:?}",
            report.panics
        );
        assert_eq!(a.tracked_objects(), 0, "seed {seed}");
        assert_eq!(b.tracked_objects(), 0, "seed {seed}");
        for obj in 0..OBJECTS as u64 {
            let addr = BASE + 0x100 * obj;
            assert_eq!(
                mem_a.raw_tag_at(addr).unwrap(),
                mem_b.raw_tag_at(addr).unwrap(),
                "seed {seed}: final tag at {addr:#x} diverged"
            );
        }
    }
}

#[test]
fn scheduler_flags_lock_order_inversion_as_deadlock() {
    let a = Arc::new(mte_sim::sync::Mutex::new(0u32));
    let b = Arc::new(mte_sim::sync::Mutex::new(0u32));
    // Search a few seeds: the inversion only deadlocks when the token
    // interleaves the two threads between their first and second locks.
    let hit = (0..64u64).any(|seed| {
        let (a1, b1) = (Arc::clone(&a), Arc::clone(&b));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let report = sched::run(
            seed,
            10_000,
            vec![
                Box::new(move || {
                    let _ga = a1.lock();
                    mte_sim::sync::yield_point("inversion");
                    let _gb = b1.lock();
                }),
                Box::new(move || {
                    let _gb = b2.lock();
                    mte_sim::sync::yield_point("inversion");
                    let _ga = a2.lock();
                }),
            ],
        );
        report.abort == Some(Abort::Deadlock)
    });
    assert!(hit, "no seed in 0..64 exposed the AB/BA deadlock");
}

#[test]
fn scheduler_aborts_runaway_schedules_on_budget() {
    let m = Arc::new(mte_sim::sync::Mutex::new(0u64));
    let m2 = Arc::clone(&m);
    let report = sched::run(
        3,
        50,
        vec![Box::new(move || loop {
            *m2.lock() += 1;
        })],
    );
    assert_eq!(report.abort, Some(Abort::BudgetExhausted));
    assert!(report.steps >= 50);
}

#[cfg(feature = "mutation")]
mod mutation {
    use super::*;

    /// The self-check budget: both seeded bugs must fall within this
    /// many schedules (in practice they fall in the first few).
    const BUDGET: u64 = 64;

    fn caught_within(kind: SchemeKind, budget: u64) -> Option<u64> {
        let cfg = StressConfig::default();
        (0..budget).find(|&seed| !run_schedule(kind, seed, &cfg).violations.is_empty())
    }

    #[test]
    fn broken_lock_free_is_caught_within_budget() {
        let at = caught_within(SchemeKind::BrokenLockFree, BUDGET);
        assert!(at.is_some(), "lost-update bug survived {BUDGET} schedules");
    }

    #[test]
    fn broken_two_tier_is_caught_within_budget() {
        let at = caught_within(SchemeKind::BrokenTwoTier, BUDGET);
        assert!(at.is_some(), "lost-update bug survived {BUDGET} schedules");
    }

    #[test]
    fn broken_global_is_caught_within_budget() {
        let at = caught_within(SchemeKind::BrokenGlobal, BUDGET);
        assert!(at.is_some(), "lost-update bug survived {BUDGET} schedules");
    }

    #[test]
    fn the_catch_is_itself_deterministic() {
        let cfg = StressConfig::default();
        let seed = (0..BUDGET)
            .find(|&s| !run_schedule(SchemeKind::BrokenTwoTier, s, &cfg).violations.is_empty())
            .expect("bug must be catchable");
        let a = run_schedule(SchemeKind::BrokenTwoTier, seed, &cfg);
        let b = run_schedule(SchemeKind::BrokenTwoTier, seed, &cfg);
        assert_eq!(a.violations, b.violations);
        assert_eq!(render(&a), render(&b));
    }
}

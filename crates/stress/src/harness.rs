//! Workloads + invariant oracle: one seeded schedule per call.
//!
//! Each schedule builds a fresh simulated memory (and, in guarded mode,
//! a fresh VM), runs N worker bodies under the deterministic scheduler,
//! and checks the scheme's invariants two ways:
//!
//! * **online probes** — immediately after an acquire and again after a
//!   yield while the borrow is held, the worker `ldg`s the object's
//!   first granule and panics (`VIOLATION: …`) unless it matches the
//!   acquired tag: a borrowed object's tags must never change underneath
//!   its holder. Release outcomes are checked inline the same way
//!   (`NotTracked` for a live borrow, impossible remaining counts).
//! * **quiescence oracle** — after a clean schedule, every entry must be
//!   gone, every object's tags re-zeroed, and the number of `Freed`
//!   outcomes must equal the number of fresh (non-shared) acquires:
//!   tags are released exactly when the last borrower leaves.
//!
//! Fault injection (when the `fault_plan` has any nonzero rate) makes
//! the error paths part of
//! the explored state space: workers tolerate `MemError::Injected` /
//! allocation failures and retry releases, so any imbalance that
//! survives to the oracle is the scheme's fault, not the injector's.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use art_heap::{HeapConfig, PrimitiveType};
use guarded_copy::GuardedCopy;
use jni_rt::{
    ContainmentConfig, FaultPolicy, JniError, NativeArray, NativeKind, Protection, ReleaseMode, Vm,
};
use mte4jni::{
    AtomicEntryTable, GlobalLockTable, Mte4Jni, Release, ReleaseError, ReleaseFailure,
    TableBackend, TableConfig, TagTable, TwoTierTable,
};
use mte_sim::inject::{self, FaultPlan, InjectCounters};
use mte_sim::sync::yield_point;
use mte_sim::{MemError, MemoryConfig, MteThread, Tag, TaggedMemory, TaggedPtr, TcfMode};

use crate::sched::{self, RunReport};

#[cfg(feature = "mutation")]
use crate::broken::{BrokenGlobal, BrokenLockFree, BrokenTwoTier};

/// Base address of the per-schedule simulated memory.
const BASE: u64 = 0x7a00_0000_0000;
/// Per-schedule memory size: small, so hundreds of schedules stay cheap.
const MEM_SIZE: usize = 1 << 20;
/// Release retries under injection before a worker gives up.
const RELEASE_RETRIES: usize = 64;

/// Which scheme a schedule exercises.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchemeKind {
    /// The lock-free packed-word table (production default).
    LockFree,
    /// The paper's two-tier locking table (§3.1.2).
    TwoTier,
    /// The global-lock ablation table.
    Global,
    /// The guarded-copy shadow ledger.
    Guarded,
    /// Deliberately broken lock-free variant (mutation self-check).
    #[cfg(feature = "mutation")]
    BrokenLockFree,
    /// Deliberately broken two-tier variant (mutation self-check).
    #[cfg(feature = "mutation")]
    BrokenTwoTier,
    /// Deliberately broken global variant (mutation self-check).
    #[cfg(feature = "mutation")]
    BrokenGlobal,
}

impl SchemeKind {
    /// Display/report label.
    pub fn label(self) -> &'static str {
        match self {
            SchemeKind::LockFree => "lock-free",
            SchemeKind::TwoTier => "two-tier",
            SchemeKind::Global => "global",
            SchemeKind::Guarded => "guarded",
            #[cfg(feature = "mutation")]
            SchemeKind::BrokenLockFree => "broken-lock-free",
            #[cfg(feature = "mutation")]
            SchemeKind::BrokenTwoTier => "broken-two-tier",
            #[cfg(feature = "mutation")]
            SchemeKind::BrokenGlobal => "broken-global",
        }
    }

    /// The real (non-mutated) schemes, in report order.
    pub const REAL: [SchemeKind; 4] = [
        SchemeKind::LockFree,
        SchemeKind::TwoTier,
        SchemeKind::Global,
        SchemeKind::Guarded,
    ];
}

/// Knobs for one schedule.
#[derive(Clone, Copy, Debug)]
pub struct StressConfig {
    /// Worker threads per schedule. Small counts explore deeper: the
    /// interleaving space grows exponentially in thread count.
    pub threads: usize,
    /// Distinct objects; fewer objects means more contention.
    pub objects: usize,
    /// Acquire/release rounds per worker.
    pub rounds: usize,
    /// Schedule-point budget before the scheduler aborts the run.
    pub max_steps: u64,
    /// Per-point fault-injection rates (parts per million); an all-zero
    /// plan disables injection. [`FaultPlan::uniform`] reproduces the
    /// old single-rate knob.
    pub fault_plan: FaultPlan,
}

impl Default for StressConfig {
    fn default() -> Self {
        StressConfig {
            threads: 3,
            objects: 2,
            rounds: 3,
            max_steps: 20_000,
            fault_plan: FaultPlan::default(),
        }
    }
}

/// Everything observed in one schedule.
#[derive(Clone, Debug)]
pub struct ScheduleResult {
    /// The schedule trace and abort/panic state.
    pub report: RunReport,
    /// Invariant violations: worker panics plus quiescence-oracle
    /// failures. Empty for a correct scheme.
    pub violations: Vec<String>,
    /// Fresh (non-shared) acquires across all workers.
    pub fresh_acquires: u64,
    /// `Freed` release outcomes across all workers.
    pub freed: u64,
    /// Faults the injector forced during the schedule.
    pub injected: u64,
    /// Tag-check faults contained at the trampoline boundary (containment
    /// workload; zero elsewhere).
    pub contained: u64,
    /// Acquires degraded to guarded copy because the method was
    /// quarantined (containment workload; zero elsewhere).
    pub degraded_quarantine: u64,
    /// Acquires degraded to guarded copy on `irg` tag-pool exhaustion
    /// (containment workload; zero elsewhere).
    pub degraded_exhaust: u64,
}

fn mix(seed: u64, salt: u64) -> u64 {
    let mut x = seed ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Table backend a VM-mounted schedule uses for `kind`. The broken
/// mutants cannot be mounted behind a VM (the scheme builds its own
/// table), so they map to their real counterparts; `Guarded` never
/// reaches this.
fn vm_backend(kind: SchemeKind) -> TableBackend {
    match kind {
        SchemeKind::TwoTier => TableBackend::TwoTier,
        #[cfg(feature = "mutation")]
        SchemeKind::BrokenTwoTier => TableBackend::TwoTier,
        SchemeKind::Global => TableBackend::Global,
        #[cfg(feature = "mutation")]
        SchemeKind::BrokenGlobal => TableBackend::Global,
        _ => TableBackend::LockFree,
    }
}

/// Runs one seeded schedule of `kind` and returns what happened. Same
/// `(kind, seed, cfg)` ⇒ identical trace, violations and counts.
pub fn run_schedule(kind: SchemeKind, seed: u64, cfg: &StressConfig) -> ScheduleResult {
    match kind {
        SchemeKind::LockFree => {
            run_table_schedule(Arc::new(AtomicEntryTable::new()), seed, cfg)
        }
        SchemeKind::TwoTier => {
            run_table_schedule(Arc::new(TwoTierTable::new(16)), seed, cfg)
        }
        SchemeKind::Global => run_table_schedule(Arc::new(GlobalLockTable::new()), seed, cfg),
        SchemeKind::Guarded => run_guarded_schedule(seed, cfg),
        #[cfg(feature = "mutation")]
        SchemeKind::BrokenLockFree => {
            run_table_schedule(Arc::new(BrokenLockFree::new()), seed, cfg)
        }
        #[cfg(feature = "mutation")]
        SchemeKind::BrokenTwoTier => {
            run_table_schedule(Arc::new(BrokenTwoTier::new(16)), seed, cfg)
        }
        #[cfg(feature = "mutation")]
        SchemeKind::BrokenGlobal => run_table_schedule(Arc::new(BrokenGlobal::new()), seed, cfg),
    }
}

fn probe(mem: &TaggedMemory, begin: TaggedPtr, tag: Tag, when: &str) {
    match mem.ldg(begin) {
        Ok(seen) if seen == tag => {}
        Ok(seen) => panic!(
            "VIOLATION: {when}: memory tag {seen:?} does not match acquired tag {tag:?}"
        ),
        // An injected ldg failure makes this probe inconclusive.
        Err(_) => {}
    }
}

/// Shared tallies the oracle balances after the schedule.
#[derive(Default)]
struct Tallies {
    fresh: AtomicU64,
    freed: AtomicU64,
    injected: Arc<InjectCounters>,
}

fn table_worker(
    table: &dyn TagTable,
    mem: &TaggedMemory,
    objects: &[u64],
    worker: usize,
    seed: u64,
    cfg: &StressConfig,
    tallies: &Tallies,
) {
    if cfg.fault_plan.is_active() {
        inject::install(
            cfg.fault_plan,
            mix(seed, worker as u64 + 1),
            Arc::clone(&tallies.injected),
        );
    }
    let t = MteThread::with_seed("stress", mix(seed, 0x7487) ^ worker as u64);
    for round in 0..cfg.rounds {
        let addr = objects[(worker + round) % objects.len()];
        let begin = TaggedPtr::from_addr(addr);
        let end = addr + 64;
        let borrow = match table.acquire(mem, &t, begin, end) {
            Ok(b) => b,
            // Injected failures (including forced irg exhaustion) are
            // tolerated; the rollback contract says they must leave the
            // table unchanged, which the oracle checks.
            Err(MemError::Injected { .. })
            | Err(MemError::OutOfNativeMemory { .. })
            | Err(MemError::TagExhausted { .. }) => continue,
            Err(e) => panic!("VIOLATION: acquire failed unexpectedly: {e}"),
        };
        if !borrow.shared() {
            tallies.fresh.fetch_add(1, Ordering::Relaxed);
        }
        let tag = borrow.tag();
        probe(mem, begin, tag, "just after acquire");
        yield_point("holding");
        probe(mem, begin, tag, "after yield while held");
        let mut pending = Some(borrow);
        let mut released = false;
        for _ in 0..RELEASE_RETRIES {
            let borrow = pending.take().expect("failed release hands the borrow back");
            match table.release(mem, borrow) {
                Ok(Release::Freed) => {
                    tallies.freed.fetch_add(1, Ordering::Relaxed);
                    released = true;
                    break;
                }
                Ok(Release::Shared { remaining }) => {
                    if remaining as usize >= cfg.threads {
                        panic!(
                            "VIOLATION: {remaining} borrowers remain after release \
                             with only {} threads",
                            cfg.threads
                        );
                    }
                    released = true;
                    break;
                }
                // The reference was parked in this thread's borrow
                // stash; the explicit flush below returns it before the
                // quiescence oracle runs.
                Ok(Release::Cached) => {
                    released = true;
                    break;
                }
                Err(ReleaseError { borrow, kind }) => match kind {
                    // A failed release must leave the count intact: the
                    // token comes back for the retry.
                    ReleaseFailure::Mem(MemError::Injected { .. }) => {
                        pending = Some(borrow);
                    }
                    ReleaseFailure::NotTracked => {
                        panic!("VIOLATION: release of a live borrow reported NotTracked")
                    }
                    ReleaseFailure::StaleGeneration { held, current } => panic!(
                        "VIOLATION: live borrow's generation went stale \
                         (held {held}, table at {current})"
                    ),
                    ReleaseFailure::Mem(e) => {
                        panic!("VIOLATION: release failed unexpectedly: {e}")
                    }
                },
            }
        }
        assert!(
            released,
            "VIOLATION: release kept failing after {RELEASE_RETRIES} retries"
        );
    }
    inject::clear();
    // Return every parked stash credit while this worker is still a
    // scheduled participant (the flush emits schedule points). Running
    // it here — not in the TLS-destructor backstop — keeps the
    // interleaving bit-reproducible and lets the quiescence oracle see
    // a fully drained table. Injection is already disarmed, so the
    // flush's tag stores cannot fail.
    table.flush_stash(mem);
}

fn run_table_schedule(
    table: Arc<dyn TagTable>,
    seed: u64,
    cfg: &StressConfig,
) -> ScheduleResult {
    let mem = Arc::new(TaggedMemory::new(MemoryConfig {
        base: BASE,
        size: MEM_SIZE,
    }));
    mem.mprotect_mte(BASE, MEM_SIZE, true)
        .expect("arena must map PROT_MTE");
    let objects: Arc<Vec<u64>> =
        Arc::new((0..cfg.objects).map(|i| BASE + 0x100 * i as u64).collect());
    let tallies = Arc::new(Tallies::default());

    let bodies: Vec<Box<dyn FnOnce() + Send + '_>> = (0..cfg.threads)
        .map(|worker| {
            let table = Arc::clone(&table);
            let mem = Arc::clone(&mem);
            let objects = Arc::clone(&objects);
            let tallies = Arc::clone(&tallies);
            let cfg = *cfg;
            Box::new(move || {
                table_worker(&*table, &mem, &objects, worker, seed, &cfg, &tallies);
            }) as Box<dyn FnOnce() + Send>
        })
        .collect();

    let report = sched::run(seed, cfg.max_steps, bodies);
    let mut violations: Vec<String> = report
        .panics
        .iter()
        .map(|(t, msg)| format!("t{t}: {msg}"))
        .collect();
    if report.clean() {
        // Quiescence oracle: every borrow was returned, so no entry, no
        // lingering tag, and one Freed per fresh acquire.
        let tracked = table.tracked_objects();
        if tracked != 0 {
            violations.push(format!("oracle: {tracked} entries leaked after quiescence"));
        }
        for &addr in objects.iter() {
            match mem.ldg(TaggedPtr::from_addr(addr)) {
                Ok(tag) if tag.is_untagged() => {}
                Ok(tag) => violations.push(format!(
                    "oracle: object {addr:#x} still tagged {tag:?} after quiescence"
                )),
                Err(e) => violations.push(format!("oracle: ldg({addr:#x}) failed: {e}")),
            }
        }
        let fresh_n = tallies.fresh.load(Ordering::Relaxed);
        let freed_n = tallies.freed.load(Ordering::Relaxed);
        // Stash-aware conservation law: every rc 0->1 transition is a
        // fresh acquire, and every rc 1->0 is either a typed `Freed`
        // release or a credit returned by a stash flush/eviction (the
        // table counts those in `atomic_stash_flush_frees`; locking
        // backends have no stash and report nothing).
        let flush_frees = table
            .counters()
            .into_iter()
            .find(|(name, _)| *name == "atomic_stash_flush_frees")
            .map(|(_, v)| v)
            .unwrap_or(0);
        if fresh_n != freed_n + flush_frees {
            violations.push(format!(
                "oracle: {fresh_n} fresh acquires but {freed_n} Freed releases \
                 + {flush_frees} stash-flush frees"
            ));
        }
    }
    ScheduleResult {
        report,
        violations,
        fresh_acquires: tallies.fresh.load(Ordering::Relaxed),
        freed: tallies.freed.load(Ordering::Relaxed),
        injected: tallies.injected.total(),
        contained: 0,
        degraded_quarantine: 0,
        degraded_exhaust: 0,
    }
}

/// The funnel-level conservation law: every entry a fresh (non-shared)
/// acquire creates is freed exactly once — by a typed release
/// (`tag_frees`), a stash flush or eviction (`atomic_stash_flush_frees`),
/// or a GC-safepoint purge (`safepoint_purge_frees`). Returns the
/// violation message if the books do not balance.
fn funnel_conservation_violation(scheme: &Mte4Jni) -> Option<String> {
    let s = scheme.stats();
    let counter = |name: &str| {
        scheme
            .counters()
            .into_iter()
            .find(|(k, _)| *k == name)
            .map_or(0, |(_, v)| v)
    };
    let flush_frees = counter("atomic_stash_flush_frees");
    let purge_frees = counter("safepoint_purge_frees");
    if s.acquires - s.shared_acquires != s.tag_frees + flush_frees + purge_frees {
        Some(format!(
            "oracle: funnel conservation broken: {} acquires - {} shared != \
             {} tag frees + {} stash-flush frees + {} safepoint purges",
            s.acquires, s.shared_acquires, s.tag_frees, flush_frees, purge_frees
        ))
    } else {
        None
    }
}

/// Runs one seeded **object-lifecycle** schedule: each worker repeatedly
/// allocates an array, acquires it through the scheme, drops the last
/// Java handle, runs a sweep (which must spare the dead-but-borrowed
/// object), then releases through a handle resurrected from the pin
/// ledger and sweeps again. The quiescence oracle asserts that no table
/// entry or shadow copy leaked, that every pin was returned, and that no
/// stale tag aliases a recycled address.
///
/// The broken-table mutants cannot be mounted behind a VM (the scheme
/// builds its own table), so they map to their real counterparts here;
/// the mutation self-check exercises them through [`run_schedule`].
pub fn run_lifecycle_schedule(kind: SchemeKind, seed: u64, cfg: &StressConfig) -> ScheduleResult {
    let memory = MemoryConfig {
        base: BASE,
        size: MEM_SIZE,
    };
    type LifecycleVm = (Vm, Box<dyn Fn() -> usize>, Option<Arc<Mte4Jni>>);
    let (vm, tracked, mte): LifecycleVm = match kind {
        SchemeKind::Guarded => {
            let p = Arc::new(GuardedCopy::new());
            let vm = Vm::builder()
                .heap_config(HeapConfig {
                    memory,
                    ..HeapConfig::stock_art()
                })
                .protection(Arc::clone(&p) as Arc<dyn Protection>)
                .build();
            (vm, Box::new(move || p.tracked_shadows()), None)
        }
        _ => {
            let p = Arc::new(Mte4Jni::with_config(TableConfig {
                backend: vm_backend(kind),
                ..TableConfig::default()
            }));
            let vm = Vm::builder()
                .heap_config(HeapConfig {
                    memory,
                    ..HeapConfig::mte4jni()
                })
                .check_mode(TcfMode::Sync)
                .protection(Arc::clone(&p) as Arc<dyn Protection>)
                .build();
            let probe = Arc::clone(&p);
            (vm, Box::new(move || probe.table().tracked_objects()), Some(p))
        }
    };
    let tallies = Arc::new(Tallies::default());

    let bodies: Vec<Box<dyn FnOnce() + Send + '_>> = (0..cfg.threads)
        .map(|worker| {
            let vm = &vm;
            let tallies = Arc::clone(&tallies);
            let cfg = *cfg;
            Box::new(move || lifecycle_worker(vm, worker, seed, &cfg, &tallies))
                as Box<dyn FnOnce() + Send + '_>
        })
        .collect();

    let report = sched::run(seed, cfg.max_steps, bodies);
    let mut violations: Vec<String> = report
        .panics
        .iter()
        .map(|(t, msg)| format!("t{t}: {msg}"))
        .collect();
    if report.clean() {
        // Run a GC safepoint first: the sweep flushes this thread's
        // stash and purges any entry kept alive only by a worker's
        // parked credit (a racing TLS-exit backstop either wins the
        // return or observes the purge — both drain to zero), so the
        // quiescence checks below see the post-safepoint state the
        // "tracked ⇒ pinned" invariant is defined at.
        let _ = vm.heap().sweep();
        let left = tracked();
        if left != 0 {
            violations.push(format!("oracle: {left} scheme entries leaked after quiescence"));
        }
        let hs = vm.heap().stats();
        if hs.pinned_objects != 0 {
            violations.push(format!(
                "oracle: {} objects still pinned after quiescence",
                hs.pinned_objects
            ));
        }
        if hs.pins_total != hs.unpins_total {
            violations.push(format!(
                "oracle: {} pins but {} unpins after quiescence",
                hs.pins_total, hs.unpins_total
            ));
        }
        // Funnel-level conservation law: every fresh acquire's entry is
        // eventually freed by a typed release, a stash flush, or a
        // GC-safepoint purge. Shared acquires reuse an entry and free
        // nothing.
        if let Some(scheme) = &mte {
            if let Some(v) = funnel_conservation_violation(scheme) {
                violations.push(v);
            }
        }
        // No tag aliasing on recycled addresses: blocks reclaimed during
        // the schedule must come back untagged, or a fresh object at the
        // same address would appear borrowed (and fault checking threads)
        // through no act of its own.
        let oracle = vm.attach_thread("lifecycle-oracle");
        for _ in 0..cfg.objects.max(4) {
            match vm.env(&oracle).new_int_array(16) {
                Ok(a) => match vm.heap().memory().raw_tag_at(a.data_addr()) {
                    Ok(tag) if tag.is_untagged() => {}
                    Ok(tag) => violations.push(format!(
                        "oracle: recycled address {:#x} still tagged {tag:?}",
                        a.data_addr()
                    )),
                    Err(e) => violations.push(format!("oracle: tag read failed: {e}")),
                },
                Err(e) => violations.push(format!("oracle: post-quiescence alloc failed: {e}")),
            }
        }
    }
    ScheduleResult {
        report,
        violations,
        fresh_acquires: tallies.fresh.load(Ordering::Relaxed),
        freed: tallies.freed.load(Ordering::Relaxed),
        injected: tallies.injected.total(),
        contained: 0,
        degraded_quarantine: 0,
        degraded_exhaust: 0,
    }
}

fn lifecycle_worker(vm: &Vm, worker: usize, seed: u64, cfg: &StressConfig, tallies: &Tallies) {
    if cfg.fault_plan.is_active() {
        inject::install(
            cfg.fault_plan,
            mix(seed, worker as u64 + 1),
            Arc::clone(&tallies.injected),
        );
    }
    // Sweeps run disarmed: the collector is a runtime-internal path (ART's
    // HeapTaskDaemon), while injection models faults on the native-facing
    // acquire/release paths. The heap treats its own tag stores as
    // infallible, so an injected `stg` inside a sweep would only panic
    // the simulation, not explore a reachable state. Re-arming derives a
    // fresh per-site seed, keeping the schedule deterministic.
    let sweep_disarmed = |salt: u64| {
        if cfg.fault_plan.is_active() {
            inject::clear();
        }
        let stats = vm.heap().sweep();
        if cfg.fault_plan.is_active() {
            inject::install(
                cfg.fault_plan,
                mix(seed, salt),
                Arc::clone(&tallies.injected),
            );
        }
        stats
    };
    let thread = vm.attach_thread("lifecycle");
    let env = vm.env(&thread);
    for round in 0..cfg.rounds {
        let marker = (worker * cfg.rounds + round) as i32 + 1;
        let (elems, obj_addr) = {
            // Allocate and immediately borrow; the only Java handle drops
            // at the end of this block, mid-borrow.
            let Ok(a) = env.new_int_array_from(&[marker; 16]) else {
                continue; // injected allocation failure: setup, not oracle
            };
            match env.get_int_array_elements(&a) {
                Ok(e) => (e, a.addr()),
                // Injected scheme failures (tag store, shadow alloc/read)
                // are tolerated; the quiescence oracle still balances.
                Err(JniError::Mem(
                    MemError::Injected { .. }
                    | MemError::OutOfNativeMemory { .. }
                    | MemError::TagExhausted { .. },
                ))
                | Err(JniError::Heap(_)) => continue,
                Err(e) => panic!("VIOLATION: lifecycle acquire failed: {e}"),
            }
        };
        tallies.fresh.fetch_add(1, Ordering::Relaxed);
        yield_point("lifecycle-borrowed");
        // The headline bug: a sweep here used to reclaim the object (its
        // last Java handle is gone) while native code still held `elems`.
        let _ = sweep_disarmed(mix(0x5EED_0001, (worker * cfg.rounds + round) as u64));
        let Some(resurrected) = vm.heap().pinned_handle(obj_addr) else {
            panic!("VIOLATION: sweep reclaimed a natively borrowed object at {obj_addr:#x}")
        };
        let array = resurrected.as_array().expect("lifecycle objects are arrays");
        match vm.heap().int_at(&thread, &array, 0) {
            Ok(v) if v == marker => {}
            Ok(v) => panic!(
                "VIOLATION: borrowed payload changed underneath the sweep: {v} != {marker}"
            ),
            Err(_) => {} // injected read failure: inconclusive
        }
        yield_point("lifecycle-swept");
        // The release must still verify and free against the surviving
        // object; a failed (injected) release keeps the pin, so retry.
        let ptr = elems.ptr();
        let is_copy = elems.is_copy();
        let mut pending = Some(elems);
        let mut released = false;
        for _ in 0..RELEASE_RETRIES {
            let e = pending
                .take()
                .unwrap_or_else(|| NativeArray::new(ptr, 16, PrimitiveType::Int, is_copy));
            match env.release_int_array_elements(&array, e, ReleaseMode::Abort) {
                Ok(()) => {
                    released = true;
                    break;
                }
                Err(JniError::Mem(MemError::Injected { .. })) => continue,
                Err(e) => panic!("VIOLATION: lifecycle release failed: {e}"),
            }
        }
        assert!(
            released,
            "VIOLATION: release kept failing after {RELEASE_RETRIES} retries"
        );
        tallies.freed.fetch_add(1, Ordering::Relaxed);
        drop(array);
        drop(resurrected);
        // Borrow over, handles gone: this sweep may reclaim the object.
        let _ = sweep_disarmed(mix(0x5EED_0002, (worker * cfg.rounds + round) as u64));
    }
    inject::clear();
}

/// Runs one seeded **containment** schedule: an MTE4JNI VM (two-tier or
/// global locking per `kind`) under [`FaultPolicy::Contain`] with a
/// guarded-copy fallback, a low quarantine threshold, and workers that
/// deliberately go out of bounds on some rounds. The containment oracle
/// asserts the VM survives every schedule — contained faults, quarantine
/// degradations, and injected failures included — with zero stale table
/// entries, zero leaked shadows or native bytes, balanced pins, and no
/// residual tags.
pub fn run_containment_schedule(kind: SchemeKind, seed: u64, cfg: &StressConfig) -> ScheduleResult {
    let memory = MemoryConfig {
        base: BASE,
        size: MEM_SIZE,
    };
    let scheme = Arc::new(Mte4Jni::with_config(TableConfig {
        backend: vm_backend(kind),
        ..TableConfig::default()
    }));
    let fallback = Arc::new(GuardedCopy::new());
    let vm = Vm::builder()
        .heap_config(HeapConfig {
            memory,
            ..HeapConfig::mte4jni()
        })
        .check_mode(TcfMode::Sync)
        .protection(Arc::clone(&scheme) as Arc<dyn Protection>)
        .fallback_protection(Arc::clone(&fallback) as Arc<dyn Protection>)
        .fault_policy(FaultPolicy::Contain)
        .containment_config(ContainmentConfig {
            // Low threshold so quarantine transitions happen within one
            // schedule's handful of rounds.
            quarantine_threshold: 2,
            transient_retries: 4,
            ..ContainmentConfig::default()
        })
        .build();
    let tallies = Arc::new(Tallies::default());

    let bodies: Vec<Box<dyn FnOnce() + Send + '_>> = (0..cfg.threads)
        .map(|worker| {
            let vm = &vm;
            let tallies = Arc::clone(&tallies);
            let cfg = *cfg;
            Box::new(move || containment_worker(vm, worker, seed, &cfg, &tallies))
                as Box<dyn FnOnce() + Send + '_>
        })
        .collect();

    let report = sched::run(seed, cfg.max_steps, bodies);
    let mut violations: Vec<String> = report
        .panics
        .iter()
        .map(|(t, msg)| format!("t{t}: {msg}"))
        .collect();
    if report.clean() {
        // Containment oracle: the VM survived the schedule, and every
        // contained fault left it balanced. The sweep safepoint runs
        // first: worker releases (and containment force-releases) park
        // stash credits, and the purge retires any entry a worker's
        // still-racing TLS-exit backstop holds.
        let _ = vm.heap().sweep();
        let tracked = scheme.table().tracked_objects();
        if tracked != 0 {
            violations.push(format!(
                "oracle: {tracked} table entries stale after contained faults"
            ));
        }
        if let Some(v) = funnel_conservation_violation(&scheme) {
            violations.push(v);
        }
        let shadows = fallback.tracked_shadows();
        if shadows != 0 {
            violations.push(format!("oracle: {shadows} fallback shadows leaked"));
        }
        let in_use = vm.heap().native_alloc().stats().bytes_in_use;
        if in_use != 0 {
            violations.push(format!("oracle: {in_use} native bytes leaked"));
        }
        let hs = vm.heap().stats();
        if hs.pinned_objects != 0 {
            violations.push(format!(
                "oracle: {} objects still pinned after contained faults",
                hs.pinned_objects
            ));
        }
        if hs.pins_total != hs.unpins_total {
            violations.push(format!(
                "oracle: {} pins but {} unpins after contained faults",
                hs.pins_total, hs.unpins_total
            ));
        }
        // Every force-released borrow must have zeroed its tags: fresh
        // allocations on recycled addresses (reclaimed by the safepoint
        // sweep above) come back untagged.
        let oracle = vm.attach_thread("containment-oracle");
        for _ in 0..cfg.objects.max(4) {
            match vm.env(&oracle).new_int_array(16) {
                Ok(a) => match vm.heap().memory().raw_tag_at(a.data_addr()) {
                    Ok(tag) if tag.is_untagged() => {}
                    Ok(tag) => violations.push(format!(
                        "oracle: recycled address {:#x} still tagged {tag:?}",
                        a.data_addr()
                    )),
                    Err(e) => violations.push(format!("oracle: tag read failed: {e}")),
                },
                Err(e) => violations.push(format!("oracle: post-quiescence alloc failed: {e}")),
            }
        }
    }
    let cs = vm.containment_stats();
    ScheduleResult {
        report,
        violations,
        fresh_acquires: tallies.fresh.load(Ordering::Relaxed),
        freed: tallies.freed.load(Ordering::Relaxed),
        injected: tallies.injected.total(),
        contained: cs.contained_faults,
        degraded_quarantine: cs.degraded_quarantine,
        degraded_exhaust: cs.degraded_tag_exhaustion,
    }
}

fn containment_worker(vm: &Vm, worker: usize, seed: u64, cfg: &StressConfig, tallies: &Tallies) {
    if cfg.fault_plan.is_active() {
        inject::install(
            cfg.fault_plan,
            mix(seed, worker as u64 + 1),
            Arc::clone(&tallies.injected),
        );
    }
    const METHODS: [&str; 2] = ["native_churn", "native_scan"];
    let thread = vm.attach_thread("containment");
    let env = vm.env(&thread);
    for round in 0..cfg.rounds {
        let step = (worker * cfg.rounds + round) as u64;
        let method = METHODS[(worker + round) % METHODS.len()];
        // Roughly a third of the rounds go out of bounds, attributed to
        // whichever method this round lands on — enough repeats on one
        // name to cross the quarantine threshold within a schedule.
        let do_oob = mix(seed, 0x0B_AD ^ step).is_multiple_of(3);
        let Ok(a) = env.new_int_array_from(&[7; 16]) else {
            continue; // injected allocation failure: setup, not oracle
        };
        let result = env.call_native(method, NativeKind::Normal, |env| {
            let elems = env.get_primitive_array_critical(&a)?;
            let mem = env.native_mem();
            let mut s = 0;
            for i in 0..16 {
                match elems.read_i32(&mem, i) {
                    Ok(v) => s += v,
                    // A tag-check fault kills native execution on the
                    // spot — no cleanup runs, the borrow leaks, and
                    // containment must reclaim it.
                    Err(e @ MemError::TagCheck(_)) => return Err(e.into()),
                    // Injected transient read failures: well-behaved
                    // native code shrugs and still releases below.
                    Err(_) => {}
                }
            }
            yield_point("containment-borrowed");
            if do_oob {
                // 16-int array: index 40 is 96 bytes past the payload —
                // a tag mismatch under MTE4JNI (sync fault, the borrow
                // leaks past the skipped release) or red-zone corruption
                // under a quarantined guarded copy (caught at release).
                elems.write_i32(&mem, 40, 0x0BAD)?;
            }
            env.release_primitive_array_critical(&a, elems, ReleaseMode::Abort)?;
            Ok(s)
        });
        match result {
            Ok(_) => {
                tallies.fresh.fetch_add(1, Ordering::Relaxed);
                tallies.freed.fetch_add(1, Ordering::Relaxed);
            }
            Err(JniError::ContainedFault { .. }) => {
                // With 4-bit tags an out-of-bounds write may also alias a
                // live neighbor and go undetected — so `do_oob` does not
                // *guarantee* a contained fault, but a contained fault
                // must have a cause.
                if !do_oob && cfg.fault_plan.spurious_check_ppm == 0 {
                    panic!(
                        "VIOLATION: in-bounds call contained a fault \
                         with no spurious injection armed"
                    );
                }
            }
            // A quarantined method's guarded copy catches the same
            // out-of-bounds write at release time: graceful degradation.
            Err(JniError::CheckJniAbort(_)) => {}
            // Injected transient failures that out-lived the retry budget.
            Err(e) if e.is_transient() => {}
            // Heap-side injected failures during array setup inside the
            // native frame.
            Err(JniError::Heap(_)) => {}
            Err(e) => panic!("VIOLATION: containment call failed: {e}"),
        }
        yield_point("containment-round");
    }
    inject::clear();
}

fn run_guarded_schedule(seed: u64, cfg: &StressConfig) -> ScheduleResult {
    let protection = Arc::new(GuardedCopy::new());
    let vm = Vm::builder()
        .heap_config(HeapConfig {
            memory: MemoryConfig {
                base: BASE,
                size: MEM_SIZE,
            },
            ..HeapConfig::stock_art()
        })
        .protection(Arc::clone(&protection) as Arc<dyn Protection>)
        .build();
    let setup = vm.attach_thread("stress-setup");
    let arrays: Vec<_> = (0..cfg.objects)
        .map(|i| {
            let data: Vec<i32> = (0..16).map(|j| (i * 16 + j) as i32).collect();
            vm.env(&setup)
                .new_int_array_from(&data)
                .expect("setup allocation must succeed")
        })
        .collect();
    let counters = Arc::new(InjectCounters::default());
    let acquired = Arc::new(AtomicU64::new(0));

    let bodies: Vec<Box<dyn FnOnce() + Send + '_>> = (0..cfg.threads)
        .map(|worker| {
            let vm = &vm;
            let arrays = &arrays;
            let counters = Arc::clone(&counters);
            let acquired = Arc::clone(&acquired);
            let cfg = *cfg;
            Box::new(move || {
                if cfg.fault_plan.is_active() {
                    inject::install(
                        cfg.fault_plan,
                        mix(seed, worker as u64 + 1),
                        Arc::clone(&counters),
                    );
                }
                let thread = vm.attach_thread("stress-guarded");
                let env = vm.env(&thread);
                for round in 0..cfg.rounds {
                    let array = &arrays[(worker + round) % arrays.len()];
                    match env.get_primitive_array_critical(array) {
                        Ok(elems) => {
                            acquired.fetch_add(1, Ordering::Relaxed);
                            yield_point("guarded-holding");
                            if let Err(e) = env.release_primitive_array_critical(
                                array,
                                elems,
                                ReleaseMode::Abort,
                            ) {
                                panic!("VIOLATION: guarded release failed: {e}");
                            }
                        }
                        // Injected shadow-allocation failure: tolerated.
                        Err(JniError::Mem(
                            MemError::OutOfNativeMemory { .. } | MemError::Injected { .. },
                        )) => {}
                        Err(e) => panic!("VIOLATION: guarded acquire failed: {e}"),
                    }
                }
                inject::clear();
            }) as Box<dyn FnOnce() + Send + '_>
        })
        .collect();

    let report = sched::run(seed, cfg.max_steps, bodies);
    let mut violations: Vec<String> = report
        .panics
        .iter()
        .map(|(t, msg)| format!("t{t}: {msg}"))
        .collect();
    if report.clean() {
        let shadows = protection.tracked_shadows();
        if shadows != 0 {
            violations.push(format!("oracle: {shadows} shadow copies leaked"));
        }
        let in_use = vm.heap().native_alloc().stats().bytes_in_use;
        if in_use != 0 {
            violations.push(format!("oracle: {in_use} native bytes leaked"));
        }
        let stats = protection.stats();
        if stats.corruptions_detected != 0 {
            violations.push(format!(
                "oracle: {} spurious corruption reports",
                stats.corruptions_detected
            ));
        }
        let acq = acquired.load(Ordering::Relaxed);
        if stats.releases != acq {
            violations.push(format!(
                "oracle: {acq} acquires but {} releases",
                stats.releases
            ));
        }
    }
    ScheduleResult {
        report,
        violations,
        fresh_acquires: acquired.load(Ordering::Relaxed),
        freed: protection.stats().releases,
        injected: counters.total(),
        contained: 0,
        degraded_quarantine: 0,
        degraded_exhaust: 0,
    }
}

// ----------------------------------------------------------------------
// Serving workload (multi-tenant isolation)
// ----------------------------------------------------------------------

/// How many tenants a serving schedule hosts (tenant 0 is the noisy
/// neighbor; the rest must come out clean).
pub const SERVING_TENANTS: u32 = 3;

/// Serving workload: a [`SERVING_TENANTS`]-tenant fleet of `kind` VMs
/// under one deterministic schedule — one scheduled worker per tenant
/// drives that tenant's seeded request stream through the full serving
/// funnel (admission, bounded retry, health latch). Tenant 0 runs with
/// the configured fault plan armed *and* out-of-bounds traffic mixed
/// in; the oracle checks the isolation invariant: every other tenant
/// finishes everything it admitted with zero contained faults, balanced
/// pin books, and zero stale table entries, no matter what tenant 0
/// does. Same `(kind, seed, cfg)` ⇒ identical trace and counts.
pub fn run_serving_schedule(kind: SchemeKind, seed: u64, cfg: &StressConfig) -> ScheduleResult {
    use server::{Tenant, TenantConfig, TenantScheme, TrafficConfig};

    let scheme = match kind {
        SchemeKind::TwoTier => TenantScheme::TwoTier,
        #[cfg(feature = "mutation")]
        SchemeKind::BrokenTwoTier => TenantScheme::TwoTier,
        SchemeKind::Global => TenantScheme::Global,
        #[cfg(feature = "mutation")]
        SchemeKind::BrokenGlobal => TenantScheme::Global,
        SchemeKind::Guarded => TenantScheme::Guarded,
        _ => TenantScheme::LockFree,
    };
    // Enough traffic per tenant for containment, quarantine and
    // shedding to all happen inside one schedule, scaled by the same
    // knob as the other workloads.
    let per_tenant = (cfg.rounds as u64) * 8;
    let tenants: Vec<Tenant> = (0..SERVING_TENANTS)
        .map(|id| {
            let mut tc = TenantConfig::new(id);
            tc.scheme = scheme;
            if id == 0 && cfg.fault_plan.is_active() {
                tc.fault_plan = Some(cfg.fault_plan);
            }
            Tenant::new(tc)
        })
        .collect();
    let traffic = TrafficConfig {
        seed,
        per_tenant,
        // Micro requests only: kernels and trace replays are serving
        // features, not schedule-exploration features, and keeping the
        // unit of work small keeps hundreds of schedules cheap.
        kernel_ppm: 0,
        replay_ppm: 0,
        noisy_tenant: Some(0),
        noisy_oob_ppm: 250_000,
    };

    let bodies: Vec<Box<dyn FnOnce() + Send + '_>> = tenants
        .iter()
        .map(|tenant| {
            Box::new(move || {
                let id = tenant.config().id;
                for i in 0..per_tenant {
                    let req = traffic.request(id, i);
                    // Shed requests are part of the workload: the
                    // worker moves on, exactly like the shared pool.
                    let _ = tenant.serve(&req);
                    yield_point("serve-next");
                }
            }) as Box<dyn FnOnce() + Send + '_>
        })
        .collect();

    let report = sched::run(seed, cfg.max_steps, bodies);
    let mut violations: Vec<String> = report
        .panics
        .iter()
        .map(|(t, msg)| format!("t{t}: {msg}"))
        .collect();
    if report.clean() {
        // The isolation invariant: whatever happened to tenant 0, the
        // neighbors served everything they admitted, fault-free.
        for tenant in &tenants[1..] {
            let id = tenant.config().id;
            let s = tenant.stats();
            if s.contained_faults != 0 {
                violations.push(format!(
                    "isolation: tenant {id} took {} contained faults from a neighbor's traffic",
                    s.contained_faults
                ));
            }
            if s.completed != s.admitted {
                violations.push(format!(
                    "isolation: tenant {id} completed {} of {} admitted requests",
                    s.completed, s.admitted
                ));
            }
            if tenant.failed() != 0 {
                violations.push(format!(
                    "isolation: tenant {id} failed {} requests",
                    tenant.failed()
                ));
            }
            if s.shed_quarantined != 0 {
                violations.push(format!(
                    "isolation: healthy tenant {id} shed {} requests as quarantined",
                    s.shed_quarantined
                ));
            }
        }
        // Per-tenant quiescence: stale entries, funnel conservation,
        // leaked shadows/bytes, pin balance — for every tenant,
        // including the noisy one (containment must leave even the
        // faulted VM balanced).
        for tenant in &tenants {
            violations.extend(tenant.quiesce());
        }
    }

    let noisy = &tenants[0];
    let cs = noisy.containment_stats();
    let (fresh, freed) = tenants
        .iter()
        .filter_map(|t| t.scheme().map(|s| s.stats()))
        .fold((0, 0), |(a, f), s| {
            (a + s.acquires - s.shared_acquires, f + s.tag_frees)
        });
    ScheduleResult {
        report,
        violations,
        fresh_acquires: fresh,
        freed,
        injected: noisy.injected_faults(),
        contained: cs.contained_faults,
        degraded_quarantine: cs.degraded_quarantine,
        degraded_exhaust: cs.degraded_tag_exhaustion,
    }
}

//! Deterministic concurrency checker and fault-injection harness for the
//! MTE4JNI tag tables and the guarded-copy ledger (DESIGN.md §9).
//!
//! The crate has three layers:
//!
//! * [`sched`] — a seeded cooperative scheduler. Real OS threads run the
//!   workload, but a single token decides who proceeds at every schedule
//!   point (`sync`-facade lock operations and explicit `yield_point`s),
//!   so one `u64` seed fully determines the interleaving. The recorded
//!   trace replays bit-for-bit across runs and processes.
//! * [`harness`] — workloads that drive [`TwoTierTable`]
//!   (`mte4jni::TwoTierTable`), the global-lock ablation and the
//!   guarded-copy ledger through contended acquire/release rounds, an
//!   online probe + quiescence oracle over the tag-table invariants, and
//!   optional seeded fault injection (`mte_sim::inject`) to force the
//!   error paths into the explored state space.
//! * [`broken`] (`mutation` feature) — tag tables with a deliberately
//!   seeded lost-update bug. The self-check (`stress --self-check`, run
//!   in CI) demands the harness catches them within a bounded budget:
//!   the watchdog that proves the watchdog barks.
//!
//! The `stress` binary drives schedule sweeps across all schemes and
//! emits a machine-readable `STRESS.json` alongside the bench reports.

pub mod harness;
pub mod sched;

#[cfg(feature = "mutation")]
pub mod broken;

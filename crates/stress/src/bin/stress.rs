//! Seeded schedule sweeps over the tag tables and guarded-copy ledger.
//!
//! ```text
//! stress --seed 7 --schedules 200 --fault-ppm 2000 --self-check --json out/
//! ```
//!
//! Runs `--schedules` deterministic interleavings per scheme (each with
//! its own derived seed), checks the concurrency invariants after every
//! schedule, and optionally proves the harness can still detect bugs by
//! running the mutation self-check. Identical invocations produce
//! bit-identical output: traces are seeded, and the JSON carries no
//! timestamps.

use std::process::ExitCode;

use mte_sim::inject::FaultPlan;
use stress::harness::{
    run_containment_schedule, run_lifecycle_schedule, run_schedule, run_serving_schedule,
    ScheduleResult, SchemeKind, StressConfig,
};
use stress::sched::trace_hash;
use telemetry::json::JsonValue;

struct Options {
    seed: u64,
    schedules: u64,
    scheme: Option<SchemeKind>,
    lifecycle: bool,
    containment: bool,
    serving: bool,
    self_check: bool,
    schedule_replay: Option<u64>,
    trace_out: Option<String>,
    json_dir: Option<String>,
    cfg: StressConfig,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            seed: 0x00C0_FFEE,
            schedules: 200,
            scheme: None,
            lifecycle: false,
            containment: false,
            serving: false,
            self_check: false,
            schedule_replay: None,
            trace_out: None,
            json_dir: None,
            cfg: StressConfig {
                fault_plan: FaultPlan::uniform(2000),
                ..StressConfig::default()
            },
        }
    }
}

impl Options {
    /// The selected workload: contended acquire/release rounds, the
    /// object-lifecycle (acquire → drop handle → sweep → release)
    /// regression schedule, or the fault-containment schedule.
    fn run(&self, kind: SchemeKind, seed: u64) -> ScheduleResult {
        if self.serving {
            run_serving_schedule(kind, seed, &self.cfg)
        } else if self.containment {
            run_containment_schedule(kind, seed, &self.cfg)
        } else if self.lifecycle {
            run_lifecycle_schedule(kind, seed, &self.cfg)
        } else {
            run_schedule(kind, seed, &self.cfg)
        }
    }

    fn workload(&self) -> &'static str {
        if self.serving {
            "serving"
        } else if self.containment {
            "containment"
        } else if self.lifecycle {
            "lifecycle"
        } else {
            "contention"
        }
    }
}

const USAGE: &str = "\
stress: deterministic concurrency + fault-injection harness

USAGE: stress [OPTIONS]

  --seed N          master seed (default 0xC0FFEE)
  --schedules N     interleavings per scheme (default 200)
  --threads N       workers per schedule (default 3)
  --objects N       contended objects per schedule (default 2)
  --rounds N        acquire/release rounds per worker (default 3)
  --max-steps N     schedule-point budget per schedule (default 20000)
  --fault-ppm N     fault-injection rate at every point, ppm (default 2000)
  --fault-irg-ppm N     irg tag-pool exhaustion rate, ppm
  --fault-ldg-ppm N     ldg failure rate, ppm
  --fault-stg-ppm N     stg / set_tag_range failure rate, ppm
  --fault-alloc-ppm N   native-allocation failure rate, ppm
  --fault-spurious-ppm N  spurious tag-check fault rate, ppm
                    (per-point flags override --fault-ppm field-by-field,
                     in argument order)
  --scheme S        lock-free | two-tier | global | guarded | all (default all)
  --lifecycle       run the object-lifecycle (pin-aware sweep) schedules
  --containment     run the fault-containment (FaultPolicy::Contain)
                    schedules; lock-free, two-tier and global only
  --serving         run the multi-tenant serving schedules: a 3-tenant
                    fleet per schedule, tenant 0 noisy (fault plan +
                    out-of-bounds traffic), oracle checks neighbor
                    isolation and per-tenant quiescence
  --self-check      also verify the harness catches the broken tables
  --schedule-replay N  re-derive and run only schedule index N from the
                    master seed, printing its full step trace
                    (--replay was removed in v8)
  --trace-out FILE  with --schedule-replay and a single --scheme: also
                    capture the runtime's JNI *event* trace to FILE
                    (inspect with `cargo run --example runtime_doctor -- FILE`).
                    Only --lifecycle/--containment schedules go through the
                    traced JNI funnel; the raw table-contention schedule
                    drives the tables directly and records nothing.
  --json DIR        write DIR/STRESS.json
  --help            this text

Two different 'replay' mechanisms meet here: --schedule-replay re-derives
a thread interleaving from its seed (nothing is read from disk), while
the trace crate's `trace replay` re-drives a recorded *event log* file.
See README section 'Record & replay'.
";

fn parse_args() -> Result<Options, String> {
    parse_args_from(std::env::args().skip(1))
}

fn parse_args_from(args: impl IntoIterator<Item = String>) -> Result<Options, String> {
    let mut o = Options::default();
    let mut args = args.into_iter();
    fn num(args: &mut impl Iterator<Item = String>, flag: &str) -> Result<u64, String> {
        let v = args.next().ok_or_else(|| format!("{flag} needs a value"))?;
        let v = v.trim();
        let parsed = if let Some(hex) = v.strip_prefix("0x") {
            u64::from_str_radix(hex, 16)
        } else {
            v.parse()
        };
        parsed.map_err(|_| format!("{flag}: bad number {v:?}"))
    }
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => o.seed = num(&mut args, "--seed")?,
            "--schedules" => o.schedules = num(&mut args, "--schedules")?,
            "--threads" => o.cfg.threads = num(&mut args, "--threads")? as usize,
            "--objects" => o.cfg.objects = num(&mut args, "--objects")?.max(1) as usize,
            "--rounds" => o.cfg.rounds = num(&mut args, "--rounds")? as usize,
            "--max-steps" => o.cfg.max_steps = num(&mut args, "--max-steps")?,
            "--fault-ppm" => {
                o.cfg.fault_plan = FaultPlan::uniform(num(&mut args, "--fault-ppm")? as u32)
            }
            "--fault-irg-ppm" => {
                o.cfg.fault_plan.irg_exhaust_ppm = num(&mut args, "--fault-irg-ppm")? as u32
            }
            "--fault-ldg-ppm" => {
                o.cfg.fault_plan.ldg_fail_ppm = num(&mut args, "--fault-ldg-ppm")? as u32
            }
            "--fault-stg-ppm" => {
                o.cfg.fault_plan.stg_fail_ppm = num(&mut args, "--fault-stg-ppm")? as u32
            }
            "--fault-alloc-ppm" => {
                o.cfg.fault_plan.alloc_fail_ppm = num(&mut args, "--fault-alloc-ppm")? as u32
            }
            "--fault-spurious-ppm" => {
                o.cfg.fault_plan.spurious_check_ppm =
                    num(&mut args, "--fault-spurious-ppm")? as u32
            }
            "--scheme" => {
                let v = args.next().ok_or("--scheme needs a value")?;
                o.scheme = match v.as_str() {
                    "lock-free" => Some(SchemeKind::LockFree),
                    "two-tier" => Some(SchemeKind::TwoTier),
                    "global" => Some(SchemeKind::Global),
                    "guarded" => Some(SchemeKind::Guarded),
                    "all" => None,
                    other => return Err(format!("--scheme: unknown scheme {other:?}")),
                };
            }
            "--lifecycle" => o.lifecycle = true,
            "--containment" => o.containment = true,
            "--serving" => o.serving = true,
            "--self-check" => o.self_check = true,
            "--schedule-replay" => {
                o.schedule_replay = Some(num(&mut args, "--schedule-replay")?);
            }
            "--replay" => {
                return Err(
                    "--replay was removed in v8; use --schedule-replay \
                     (the trace crate's `trace replay` re-drives recorded \
                     event-log files)"
                        .to_owned(),
                );
            }
            "--trace-out" => o.trace_out = Some(args.next().ok_or("--trace-out needs a value")?),
            "--json" => o.json_dir = Some(args.next().ok_or("--json needs a value")?),
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
    }
    Ok(o)
}

/// Per-schedule seed: the master seed mixed with the schedule index.
fn schedule_seed(seed: u64, idx: u64) -> u64 {
    let mut x = seed ^ idx.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

struct SchemeOutcome {
    scheme: &'static str,
    schedules_run: u64,
    clean: bool,
    /// FNV-fold of every schedule's trace hash — the reproducibility
    /// fingerprint.
    trace_hash: u64,
    steps_total: u64,
    injected_faults: u64,
    contained_faults: u64,
    degraded_quarantine: u64,
    degraded_exhaust: u64,
    violations: Vec<String>,
    failing_schedule: Option<u64>,
}

fn sweep(kind: SchemeKind, o: &Options) -> SchemeOutcome {
    let mut combined: u64 = 0xcbf2_9ce4_8422_2325;
    let mut steps_total = 0;
    let mut injected = 0;
    let mut contained = 0;
    let mut degraded_quarantine = 0;
    let mut degraded_exhaust = 0;
    let mut run = 0;
    for idx in 0..o.schedules {
        let seed = schedule_seed(o.seed, idx);
        let result = o.run(kind, seed);
        run += 1;
        combined ^= trace_hash(&result.report.trace);
        combined = combined.wrapping_mul(0x1000_0000_01b3);
        steps_total += result.report.steps;
        injected += result.injected;
        contained += result.contained;
        degraded_quarantine += result.degraded_quarantine;
        degraded_exhaust += result.degraded_exhaust;
        if !result.violations.is_empty() {
            eprintln!(
                "[{}] schedule {idx} (seed {seed:#x}) violated invariants:",
                kind.label()
            );
            for v in &result.violations {
                eprintln!("  {v}");
            }
            eprintln!("  trace ({} events):", result.report.trace.len());
            for ev in &result.report.trace {
                eprintln!("    {ev}");
            }
            return SchemeOutcome {
                scheme: kind.label(),
                schedules_run: run,
                clean: false,
                trace_hash: combined,
                steps_total,
                injected_faults: injected,
                contained_faults: contained,
                degraded_quarantine,
                degraded_exhaust,
                violations: result.violations,
                failing_schedule: Some(idx),
            };
        }
    }
    SchemeOutcome {
        scheme: kind.label(),
        schedules_run: run,
        clean: true,
        trace_hash: combined,
        steps_total,
        injected_faults: injected,
        contained_faults: contained,
        degraded_quarantine,
        degraded_exhaust,
        violations: Vec::new(),
        failing_schedule: None,
    }
}

fn schedule_replay(kind: SchemeKind, idx: u64, o: &Options) {
    let seed = schedule_seed(o.seed, idx);
    let session = o.trace_out.as_ref().map(|_| trace::RecordingSession::start());
    let result = o.run(kind, seed);
    if let (Some(session), Some(path)) = (session, o.trace_out.as_ref()) {
        let t = session.finish(trace::TraceHeader {
            label: format!("stress:{}:{idx}", kind.label()),
            scheme: kind.label().to_owned(),
            tcf_mode: 1,
            check_jni: false,
            fault_policy: if o.containment { 1 } else { 0 },
            seed,
            plan: Some(o.cfg.fault_plan),
        });
        match t.save(path) {
            Ok(()) => println!("event trace: {} event(s) -> {path}", t.events.len()),
            Err(e) => eprintln!("--trace-out {path}: {e}"),
        }
    }
    println!(
        "[{}] schedule {idx} seed {seed:#x}: {} events, {} steps, abort={:?}",
        kind.label(),
        result.report.trace.len(),
        result.report.steps,
        result.report.abort,
    );
    for ev in &result.report.trace {
        println!("  {ev}");
    }
    for v in &result.violations {
        println!("  violation: {v}");
    }
    println!(
        "  fresh={} freed={} injected={} trace_hash={:#018x}",
        result.fresh_acquires,
        result.freed,
        result.injected,
        trace_hash(&result.report.trace)
    );
}

struct SelfCheckOutcome {
    scheme: &'static str,
    caught: bool,
    schedules_to_catch: Option<u64>,
    first_violation: Option<String>,
}

/// Runs a broken scheme until the harness flags it; the harness fails
/// its own audit if a seeded bug survives the whole budget.
#[cfg(feature = "mutation")]
fn self_check(kind: SchemeKind, o: &Options) -> SelfCheckOutcome {
    // No fault injection here: the self-check isolates pure concurrency
    // detection.
    let cfg = StressConfig {
        fault_plan: FaultPlan::default(),
        ..o.cfg
    };
    for idx in 0..o.schedules {
        let seed = schedule_seed(o.seed, idx);
        let result = run_schedule(kind, seed, &cfg);
        if !result.violations.is_empty() {
            return SelfCheckOutcome {
                scheme: kind.label(),
                caught: true,
                schedules_to_catch: Some(idx + 1),
                first_violation: result.violations.first().cloned(),
            };
        }
    }
    SelfCheckOutcome {
        scheme: kind.label(),
        caught: false,
        schedules_to_catch: None,
        first_violation: None,
    }
}

fn main() -> ExitCode {
    let o = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("stress: {e}");
            return ExitCode::from(2);
        }
    };
    // Keep the run single-variable: telemetry events would add cross-test
    // interference without changing what the oracle can see.
    telemetry::set_enabled(false);

    let schemes: Vec<SchemeKind> = match o.scheme {
        Some(SchemeKind::Guarded) if o.containment => {
            eprintln!(
                "stress: --containment runs MTE4JNI with a guarded-copy \
                 fallback; --scheme guarded has nothing to contain"
            );
            return ExitCode::from(2);
        }
        Some(k) => vec![k],
        // Containment is an MTE4JNI-with-fallback workload: guarded copy
        // is the degradation target, not a scheme under test.
        None if o.containment => vec![
            SchemeKind::LockFree,
            SchemeKind::TwoTier,
            SchemeKind::Global,
        ],
        None => SchemeKind::REAL.to_vec(),
    };

    if let Some(idx) = o.schedule_replay {
        if o.trace_out.is_some() && schemes.len() != 1 {
            eprintln!("--trace-out needs a single --scheme (events from multiple schemes would interleave in one file)");
            return ExitCode::FAILURE;
        }
        for &kind in &schemes {
            schedule_replay(kind, idx, &o);
        }
        return ExitCode::SUCCESS;
    }
    if o.trace_out.is_some() {
        eprintln!("--trace-out requires --schedule-replay");
        return ExitCode::FAILURE;
    }

    let mut ok = true;
    let mut outcomes = Vec::new();
    for &kind in &schemes {
        let out = sweep(kind, &o);
        println!(
            "[{}] {} schedules, {} steps, {} injected faults, {} — trace hash {:#018x}",
            out.scheme,
            out.schedules_run,
            out.steps_total,
            out.injected_faults,
            if out.clean { "clean" } else { "VIOLATION" },
            out.trace_hash,
        );
        if o.containment || o.serving {
            println!(
                "[{}] {}: {} contained faults, {} quarantine degradations, \
                 {} tag-exhaustion degradations",
                out.scheme,
                o.workload(),
                out.contained_faults,
                out.degraded_quarantine,
                out.degraded_exhaust,
            );
        }
        ok &= out.clean;
        outcomes.push(out);
    }

    let mut self_checks = Vec::new();
    if o.self_check {
        #[cfg(feature = "mutation")]
        for kind in [
            SchemeKind::BrokenLockFree,
            SchemeKind::BrokenTwoTier,
            SchemeKind::BrokenGlobal,
        ] {
            let out = self_check(kind, &o);
            match (out.caught, out.schedules_to_catch) {
                (true, Some(n)) => println!(
                    "[self-check] {} caught in {n} schedule(s): {}",
                    out.scheme,
                    out.first_violation.as_deref().unwrap_or("?"),
                ),
                _ => {
                    eprintln!(
                        "[self-check] FAILED: {} survived {} schedules — \
                         the harness is not detecting seeded bugs",
                        out.scheme, o.schedules
                    );
                    ok = false;
                }
            }
            self_checks.push(out);
        }
        #[cfg(not(feature = "mutation"))]
        {
            eprintln!("stress: --self-check requires the `mutation` feature");
            ok = false;
        }
    }

    if let Some(dir) = &o.json_dir {
        let report = json_report(&o, &outcomes, &self_checks, ok);
        let path = std::path::Path::new(dir).join("STRESS.json");
        if let Err(e) = std::fs::create_dir_all(dir)
            .and_then(|()| std::fs::write(&path, report.to_pretty_string()))
        {
            eprintln!("stress: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!("wrote {}", path.display());
    }

    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn json_report(
    o: &Options,
    outcomes: &[SchemeOutcome],
    self_checks: &[SelfCheckOutcome],
    ok: bool,
) -> JsonValue {
    let mut root = JsonValue::object();
    root.insert("schema_version", 1u64);
    root.insert("tool", "stress");

    let mut params = JsonValue::object();
    params.insert("workload", o.workload());
    params.insert("seed", o.seed);
    params.insert("schedules", o.schedules);
    params.insert("threads", o.cfg.threads as u64);
    params.insert("objects", o.cfg.objects as u64);
    params.insert("rounds", o.cfg.rounds as u64);
    params.insert("max_steps", o.cfg.max_steps);
    let mut plan = JsonValue::object();
    plan.insert("irg_ppm", u64::from(o.cfg.fault_plan.irg_exhaust_ppm));
    plan.insert("ldg_ppm", u64::from(o.cfg.fault_plan.ldg_fail_ppm));
    plan.insert("stg_ppm", u64::from(o.cfg.fault_plan.stg_fail_ppm));
    plan.insert("alloc_ppm", u64::from(o.cfg.fault_plan.alloc_fail_ppm));
    plan.insert("spurious_ppm", u64::from(o.cfg.fault_plan.spurious_check_ppm));
    params.insert("fault_plan", plan);
    root.insert("params", params);

    let schemes: Vec<JsonValue> = outcomes
        .iter()
        .map(|out| {
            let mut s = JsonValue::object();
            s.insert("scheme", out.scheme);
            s.insert("schedules_run", out.schedules_run);
            s.insert("clean", out.clean);
            s.insert("trace_hash", format!("{:#018x}", out.trace_hash));
            s.insert("steps_total", out.steps_total);
            s.insert("injected_faults", out.injected_faults);
            if o.containment || o.serving {
                s.insert("contained_faults", out.contained_faults);
                s.insert("degraded_quarantine", out.degraded_quarantine);
                s.insert("degraded_tag_exhaustion", out.degraded_exhaust);
            }
            s.insert(
                "violations",
                JsonValue::Array(
                    out.violations
                        .iter()
                        .map(|v| JsonValue::Str(v.clone()))
                        .collect(),
                ),
            );
            if let Some(idx) = out.failing_schedule {
                s.insert("failing_schedule", idx);
            }
            s
        })
        .collect();
    root.insert("schemes", JsonValue::Array(schemes));

    if !self_checks.is_empty() {
        let checks: Vec<JsonValue> = self_checks
            .iter()
            .map(|c| {
                let mut s = JsonValue::object();
                s.insert("scheme", c.scheme);
                s.insert("caught", c.caught);
                if let Some(n) = c.schedules_to_catch {
                    s.insert("schedules_to_catch", n);
                }
                if let Some(v) = &c.first_violation {
                    s.insert("first_violation", v.as_str());
                }
                s
            })
            .collect();
        root.insert("self_check", JsonValue::Array(checks));
    }
    root.insert("ok", ok);
    root
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> impl IntoIterator<Item = String> + '_ {
        s.split_whitespace().map(str::to_owned)
    }

    #[test]
    fn schedule_replay_still_parses() {
        let o = parse_args_from(args("--seed 0xBEEF --lifecycle --schedule-replay 7")).unwrap();
        assert_eq!(o.schedule_replay, Some(7));
        assert_eq!(o.seed, 0xBEEF);
        assert!(o.lifecycle);
    }

    #[test]
    fn removed_replay_alias_errors_with_a_pointer_to_the_new_name() {
        for cmdline in ["--replay 7", "--replay", "--seed 0xBEEF --replay 7"] {
            let err = match parse_args_from(args(cmdline)) {
                Err(e) => e,
                Ok(_) => panic!("{cmdline}: removed alias was accepted"),
            };
            assert!(err.contains("--replay was removed"), "{cmdline}: {err}");
            assert!(err.contains("--schedule-replay"), "{cmdline}: {err}");
        }
    }

    #[test]
    fn serving_flag_selects_the_serving_workload() {
        let o = parse_args_from(args("--serving --schedules 5")).unwrap();
        assert!(o.serving);
        assert_eq!(o.workload(), "serving");
        assert_eq!(o.schedules, 5);
    }
}

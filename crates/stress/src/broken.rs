//! Deliberately broken tag-table variants for the mutation self-check
//! (`mutation` feature, default-on, never exported outside this crate's
//! tests and `--self-check`).
//!
//! All variants carry the same class of seeded bug: a **lost update** on
//! the reference count. Where the real tables read and mutate the count
//! under one continuous critical section (or one CAS), these read it,
//! cross a schedule point, and write the derived value back blindly.
//! Under the deterministic scheduler every `lock()` / `yield_point` is a
//! schedule point, so some interleaving runs two workers through the
//! read before either writes — both observe `reference_num == 0`, both
//! take the "fresh" path, and the second `irg`/`set_tag_range` retags
//! memory out from under the first borrower. The harness catches this as
//! a probe mismatch, a `NotTracked` release of a live borrow, or a
//! fresh/freed imbalance at quiescence; the self-check requires one of
//! those within a bounded number of schedules.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use mte4jni::entry::{self, EntryState};
use mte4jni::{Borrow, ReleaseOutcome, TagTable};
use mte_sim::sync::{yield_point, Mutex};
use mte_sim::{MteThread, Tag, TagExclusion, TaggedMemory, TaggedPtr, GRANULE};

#[derive(Debug)]
struct Entry {
    reference_num: u32,
    tag: Tag,
}

/// Two-tier layout (table locks + per-object entry locks) with the
/// read/rewrite gap on the entry's reference count.
#[derive(Debug)]
pub struct BrokenTwoTier {
    tables: Vec<Mutex<HashMap<u64, Arc<Mutex<Entry>>>>>,
}

impl BrokenTwoTier {
    /// Creates the broken table set with `table_count` hash tables.
    pub fn new(table_count: usize) -> BrokenTwoTier {
        assert!(table_count > 0);
        BrokenTwoTier {
            tables: (0..table_count)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
        }
    }

    fn table(&self, addr: u64) -> &Mutex<HashMap<u64, Arc<Mutex<Entry>>>> {
        &self.tables[((addr / GRANULE as u64) % self.tables.len() as u64) as usize]
    }
}

impl TagTable for BrokenTwoTier {
    fn acquire(
        &self,
        mem: &TaggedMemory,
        thread: &MteThread,
        begin: TaggedPtr,
        end: u64,
    ) -> mte_sim::Result<Borrow> {
        let addr = begin.addr();
        let entry = {
            let mut t = self.table(addr).lock();
            Arc::clone(t.entry(addr).or_insert_with(|| {
                Arc::new(Mutex::new(Entry {
                    reference_num: 0,
                    tag: Tag::UNTAGGED,
                }))
            }))
        };
        // BUG: the count is read here and written back under a *second*
        // lock below; another thread can interleave between the two.
        let count = entry.lock().reference_num;
        if count == 0 {
            let tag = mem.irg(thread, TagExclusion::default());
            mem.set_tag_range(begin, end, tag)?;
            let mut e = entry.lock();
            e.tag = tag;
            e.reference_num = count + 1;
            Ok(Borrow::new(addr, end, tag, 0, false))
        } else {
            mem.ldg(begin)?;
            let mut e = entry.lock();
            let tag = e.tag;
            e.reference_num = count + 1;
            Ok(Borrow::new(addr, end, tag, 0, true))
        }
    }

    fn release_raw(
        &self,
        mem: &TaggedMemory,
        begin: TaggedPtr,
        end: u64,
    ) -> mte_sim::Result<ReleaseOutcome> {
        let addr = begin.addr();
        let entry = {
            let t = self.table(addr).lock();
            match t.get(&addr) {
                Some(e) => Arc::clone(e),
                None => return Ok(ReleaseOutcome::NotTracked),
            }
        };
        // BUG: same read-then-rewrite gap as acquire.
        let count = entry.lock().reference_num;
        match count {
            0 => Ok(ReleaseOutcome::NotTracked),
            1 => {
                mem.set_tag_range(begin.untagged(), end, Tag::UNTAGGED)?;
                entry.lock().reference_num = 0;
                self.table(addr).lock().remove(&addr);
                Ok(ReleaseOutcome::Freed)
            }
            _ => {
                entry.lock().reference_num = count - 1;
                Ok(ReleaseOutcome::Decremented {
                    remaining: count - 1,
                })
            }
        }
    }

    fn tracked_objects(&self) -> usize {
        self.tables.iter().map(|t| t.lock().len()).sum()
    }
}

/// Global-lock layout with the read/rewrite gap: the map is consulted
/// under one `lock()` and updated under another, so two first-acquirers
/// can both conclude the object is untracked.
#[derive(Debug, Default)]
pub struct BrokenGlobal {
    entries: Mutex<HashMap<u64, Entry>>,
}

impl BrokenGlobal {
    /// Creates the broken global table.
    pub fn new() -> BrokenGlobal {
        BrokenGlobal::default()
    }
}

impl TagTable for BrokenGlobal {
    fn acquire(
        &self,
        mem: &TaggedMemory,
        thread: &MteThread,
        begin: TaggedPtr,
        end: u64,
    ) -> mte_sim::Result<Borrow> {
        let addr = begin.addr();
        // BUG: lookup and update are separate critical sections.
        let existing = self
            .entries
            .lock()
            .get(&addr)
            .map(|e| (e.reference_num, e.tag));
        match existing {
            Some((count, tag)) => {
                mem.ldg(begin)?;
                if let Some(e) = self.entries.lock().get_mut(&addr) {
                    e.reference_num = count + 1;
                }
                Ok(Borrow::new(addr, end, tag, 0, true))
            }
            None => {
                let tag = mem.irg(thread, TagExclusion::default());
                mem.set_tag_range(begin, end, tag)?;
                self.entries.lock().insert(
                    addr,
                    Entry {
                        reference_num: 1,
                        tag,
                    },
                );
                Ok(Borrow::new(addr, end, tag, 0, false))
            }
        }
    }

    fn release_raw(
        &self,
        mem: &TaggedMemory,
        begin: TaggedPtr,
        end: u64,
    ) -> mte_sim::Result<ReleaseOutcome> {
        let addr = begin.addr();
        let count = match self.entries.lock().get(&addr) {
            Some(e) => e.reference_num,
            None => return Ok(ReleaseOutcome::NotTracked),
        };
        if count > 1 {
            if let Some(e) = self.entries.lock().get_mut(&addr) {
                e.reference_num = count - 1;
            }
            Ok(ReleaseOutcome::Decremented {
                remaining: count - 1,
            })
        } else {
            mem.set_tag_range(begin.untagged(), end, Tag::UNTAGGED)?;
            self.entries.lock().remove(&addr);
            Ok(ReleaseOutcome::Freed)
        }
    }

    fn tracked_objects(&self) -> usize {
        self.entries.lock().len()
    }
}

/// Lock-free layout with the CAS replaced by a load / schedule point /
/// blind store: the packed entry word is read, the derived word is
/// computed, and a plain `store` clobbers whatever raced in between.
/// Two concurrent first-acquirers both observe `Free`, both run
/// `irg`/`set_tag_range`, and the second store erases the first
/// borrower's count — the same lost-update class as the lock-based
/// mutants, expressed in the lock-free table's own vocabulary.
#[derive(Debug, Default)]
pub struct BrokenLockFree {
    words: Mutex<HashMap<u64, Arc<AtomicU64>>>,
}

impl BrokenLockFree {
    /// Creates the broken lock-free table.
    pub fn new() -> BrokenLockFree {
        BrokenLockFree::default()
    }

    fn word(&self, addr: u64) -> Arc<AtomicU64> {
        let mut words = self.words.lock();
        Arc::clone(
            words
                .entry(addr)
                .or_insert_with(|| Arc::new(AtomicU64::new(0))),
        )
    }
}

impl TagTable for BrokenLockFree {
    fn acquire(
        &self,
        mem: &TaggedMemory,
        thread: &MteThread,
        begin: TaggedPtr,
        end: u64,
    ) -> mte_sim::Result<Borrow> {
        let addr = begin.addr();
        let slot = self.word(addr);
        // BUG: read-compute-store instead of CAS; the yield between the
        // load and the store is exactly where the real table would have
        // detected interference and retried.
        let word = slot.load(Ordering::Acquire);
        if entry::state(word) == EntryState::Live {
            mem.ldg(begin)?;
            yield_point("broken-lockfree-gap");
            slot.store(entry::add_ref(word), Ordering::Release);
            Ok(Borrow::new(
                addr,
                end,
                entry::tag(word),
                entry::generation(word),
                true,
            ))
        } else {
            let tag = mem.irg(thread, TagExclusion::default());
            mem.set_tag_range(begin, end, tag)?;
            yield_point("broken-lockfree-gap");
            let generation = entry::generation(word).wrapping_add(1);
            slot.store(
                entry::pack(1, tag, EntryState::Live, generation),
                Ordering::Release,
            );
            Ok(Borrow::new(addr, end, tag, generation, false))
        }
    }

    fn release_raw(
        &self,
        mem: &TaggedMemory,
        begin: TaggedPtr,
        end: u64,
    ) -> mte_sim::Result<ReleaseOutcome> {
        let addr = begin.addr();
        let slot = match self.words.lock().get(&addr) {
            Some(w) => Arc::clone(w),
            None => return Ok(ReleaseOutcome::NotTracked),
        };
        // BUG: same read/yield/store gap on the way down.
        let word = slot.load(Ordering::Acquire);
        if entry::state(word) != EntryState::Live {
            return Ok(ReleaseOutcome::NotTracked);
        }
        let count = entry::refcount(word);
        if count > 1 {
            yield_point("broken-lockfree-gap");
            slot.store(entry::drop_ref(word), Ordering::Release);
            Ok(ReleaseOutcome::Decremented {
                remaining: count - 1,
            })
        } else {
            mem.set_tag_range(begin.untagged(), end, Tag::UNTAGGED)?;
            yield_point("broken-lockfree-gap");
            slot.store(
                entry::pack(0, Tag::UNTAGGED, EntryState::Free, entry::generation(word)),
                Ordering::Release,
            );
            Ok(ReleaseOutcome::Freed)
        }
    }

    fn tracked_objects(&self) -> usize {
        self.words
            .lock()
            .values()
            .filter(|w| entry::state(w.load(Ordering::Relaxed)) == EntryState::Live)
            .count()
    }
}

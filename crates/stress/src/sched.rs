//! The seeded virtual scheduler.
//!
//! Runs N workload closures on real OS threads but serializes them:
//! exactly one thread holds the *token* at any instant, and every
//! schedule point (lock attempt, lock-blocked, explicit yield, thread
//! finish) hands the token to a pseudo-randomly chosen runnable thread.
//! Because the choice sequence is a pure function of the `u64` seed and
//! the workload's control flow, a failing interleaving replays exactly
//! by re-running with the same seed.
//!
//! The scheduler plugs into the instrumented `mte_sim::sync` facade as a
//! thread-local [`SchedObserver`]: participant threads register it on
//! entry, so concurrent schedulers in one test binary cannot observe
//! each other, and non-participant threads pay one thread-local check.
//!
//! Blocking protocol: a facade `lock()` reports `lock_attempt` (schedule
//! point), then `try_lock`s. On failure it reports `lock_blocked` and
//! the thread is parked until the holder's release marks it runnable
//! again. Under serialized execution a blocked status therefore always
//! corresponds to a genuinely held lock, which makes deadlock detection
//! sound: no runnable thread + unfinished threads ⇒ deadlock.

use std::cell::Cell;
use std::collections::HashMap;
use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, Once};

use mte_sim::sync::{set_thread_observer, SchedObserver};

/// Why a schedule stopped before every thread finished.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Abort {
    /// Every unfinished thread was blocked on a held lock.
    Deadlock,
    /// The schedule exceeded its step budget.
    BudgetExhausted,
}

impl Abort {
    /// Display label (used in reports).
    pub fn label(self) -> &'static str {
        match self {
            Abort::Deadlock => "deadlock",
            Abort::BudgetExhausted => "budget_exhausted",
        }
    }
}

/// One operation in the schedule trace. Lock ids are *per-schedule
/// aliases* in first-contact order, so the same seed produces the same
/// trace even across processes (the global facade ids depend on how
/// many locks were created earlier in the process).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceOp {
    /// The thread attempted a lock.
    LockAttempt(u64),
    /// The attempt failed; the thread parked until release.
    LockBlocked(u64),
    /// The lock was taken.
    LockAcquired(u64),
    /// The lock was dropped.
    LockReleased(u64),
    /// A named preemption point.
    Yield(&'static str),
    /// The thread's body returned (or unwound).
    Finish,
}

/// One entry of the schedule trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// The participant index that performed the operation.
    pub thread: usize,
    /// The operation.
    pub op: TraceOp,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let t = self.thread;
        match self.op {
            TraceOp::LockAttempt(l) => write!(f, "t{t} attempt L{l}"),
            TraceOp::LockBlocked(l) => write!(f, "t{t} blocked L{l}"),
            TraceOp::LockAcquired(l) => write!(f, "t{t} acquired L{l}"),
            TraceOp::LockReleased(l) => write!(f, "t{t} released L{l}"),
            TraceOp::Yield(label) => write!(f, "t{t} yield {label}"),
            TraceOp::Finish => write!(f, "t{t} finish"),
        }
    }
}

/// The result of one schedule.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Every schedule point and lock transition, in execution order.
    pub trace: Vec<TraceEvent>,
    /// Schedule points consumed (compared against the budget).
    pub steps: u64,
    /// Why the schedule stopped early, if it did.
    pub abort: Option<Abort>,
    /// Real panics caught in workload bodies, as `(thread, message)` in
    /// thread-index order. Scheduler-initiated unwinds are excluded.
    pub panics: Vec<(usize, String)>,
}

impl RunReport {
    /// Whether every thread ran to completion without panicking.
    pub fn clean(&self) -> bool {
        self.abort.is_none() && self.panics.is_empty()
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Status {
    Ready,
    Blocked(u64),
    Finished,
}

struct State {
    statuses: Vec<Status>,
    current: Option<usize>,
    rng: u64,
    steps: u64,
    max_steps: u64,
    trace: Vec<TraceEvent>,
    /// Global facade lock id → dense per-schedule alias.
    lock_alias: HashMap<u64, u64>,
    abort: Option<Abort>,
}

impl State {
    fn alias(&mut self, id: u64) -> u64 {
        let next = self.lock_alias.len() as u64;
        *self.lock_alias.entry(id).or_insert(next)
    }

    fn record(&mut self, thread: usize, op: TraceOp) {
        self.trace.push(TraceEvent { thread, op });
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn next_u64(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545_f491_4f6c_dd1d)
}

/// Payload of a scheduler-initiated unwind (budget/deadlock abort);
/// distinguished from real workload panics at the catch site.
struct AbortUnwind;

thread_local! {
    static PARTICIPANT: Cell<Option<usize>> = const { Cell::new(None) };
    static QUIET_PANICS: Cell<bool> = const { Cell::new(false) };
}

/// Participant panics are expected (violations, scheduler aborts) and
/// reported through [`RunReport`]; keep them off stderr without
/// touching the hook other threads see.
fn install_quiet_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !QUIET_PANICS.with(|q| q.get()) {
                prev(info);
            }
        }));
    });
}

/// The deterministic scheduler. Construct per schedule via [`run`].
pub struct Scheduler {
    state: Mutex<State>,
    cv: Condvar,
}

impl Scheduler {
    fn new(seed: u64, max_steps: u64, threads: usize) -> Scheduler {
        Scheduler {
            state: Mutex::new(State {
                statuses: vec![Status::Ready; threads],
                current: None,
                rng: splitmix64(seed) | 1,
                steps: 0,
                max_steps,
                trace: Vec::new(),
                lock_alias: HashMap::new(),
                abort: None,
            }),
            cv: Condvar::new(),
        }
    }

    fn me() -> usize {
        PARTICIPANT
            .with(|p| p.get())
            .expect("schedule point on a non-participant thread")
    }

    fn bail() -> ! {
        panic::resume_unwind(Box::new(AbortUnwind));
    }

    /// Picks the next token holder among Ready threads; flags a deadlock
    /// when none is runnable but some are unfinished.
    fn pick_next(&self, st: &mut State) {
        if st.abort.is_some() {
            st.current = None;
            return;
        }
        let ready: Vec<usize> = st
            .statuses
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == Status::Ready)
            .map(|(i, _)| i)
            .collect();
        if ready.is_empty() {
            if st.statuses.iter().any(|s| *s != Status::Finished) {
                st.abort = Some(Abort::Deadlock);
            }
            st.current = None;
            return;
        }
        let k = (next_u64(&mut st.rng) % ready.len() as u64) as usize;
        st.current = Some(ready[k]);
    }

    /// Waits until this thread holds the token; unwinds on abort.
    fn wait_for_token<'a>(
        &'a self,
        mut st: std::sync::MutexGuard<'a, State>,
        me: usize,
    ) -> std::sync::MutexGuard<'a, State> {
        loop {
            if st.abort.is_some() {
                drop(st);
                Self::bail();
            }
            if st.current == Some(me) {
                return st;
            }
            st = self.cv.wait(st).expect("scheduler state poisoned");
        }
    }

    /// A full schedule point: record, charge the budget, hand the token
    /// to a seeded choice among runnable threads, wait to be picked.
    fn schedule_point(&self, op_of: impl FnOnce(&mut State) -> TraceOp) {
        let me = Self::me();
        let mut st = self.state.lock().expect("scheduler state poisoned");
        let op = op_of(&mut st);
        st.record(me, op);
        st.steps += 1;
        if st.abort.is_none() && st.steps >= st.max_steps {
            st.abort = Some(Abort::BudgetExhausted);
        }
        self.pick_next(&mut st);
        self.cv.notify_all();
        drop(self.wait_for_token(st, me));
    }

    fn kickoff(&self) {
        let mut st = self.state.lock().expect("scheduler state poisoned");
        self.pick_next(&mut st);
        drop(st);
        self.cv.notify_all();
    }

    fn initial_wait(&self, me: usize) {
        let st = self.state.lock().expect("scheduler state poisoned");
        drop(self.wait_for_token(st, me));
    }

    fn finish(&self, me: usize) {
        let mut st = self.state.lock().expect("scheduler state poisoned");
        // After an abort every thread wakes and finishes in OS order;
        // recording those events would make aborted traces racy.
        if st.abort.is_none() {
            st.record(me, TraceOp::Finish);
            st.steps += 1;
        }
        st.statuses[me] = Status::Finished;
        st.current = None;
        self.pick_next(&mut st);
        drop(st);
        self.cv.notify_all();
    }
}

impl SchedObserver for Scheduler {
    fn lock_attempt(&self, id: u64) {
        self.schedule_point(|st| TraceOp::LockAttempt(st.alias(id)));
    }

    fn lock_blocked(&self, id: u64) {
        let me = Self::me();
        let mut st = self.state.lock().expect("scheduler state poisoned");
        let alias = st.alias(id);
        st.record(me, TraceOp::LockBlocked(alias));
        st.steps += 1;
        if st.abort.is_none() && st.steps >= st.max_steps {
            st.abort = Some(Abort::BudgetExhausted);
        }
        st.statuses[me] = Status::Blocked(id);
        self.pick_next(&mut st);
        self.cv.notify_all();
        drop(self.wait_for_token(st, me));
    }

    fn lock_acquired(&self, id: u64) {
        let me = Self::me();
        let mut st = self.state.lock().expect("scheduler state poisoned");
        let alias = st.alias(id);
        st.record(me, TraceOp::LockAcquired(alias));
    }

    fn lock_released(&self, id: u64) {
        // Record + wake waiters only. Runs from guard `Drop`, possibly
        // mid-unwind: must never deschedule or panic.
        let me = Self::me();
        let mut st = self.state.lock().expect("scheduler state poisoned");
        let alias = st.alias(id);
        st.record(me, TraceOp::LockReleased(alias));
        for s in &mut st.statuses {
            if *s == Status::Blocked(id) {
                *s = Status::Ready;
            }
        }
    }

    fn yield_point(&self, label: &'static str) {
        self.schedule_point(|_| TraceOp::Yield(label));
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_owned()
    }
}

/// Runs `bodies` under one seeded schedule and returns the trace.
///
/// Each body runs on its own OS thread with the scheduler installed as
/// its `sync`-facade observer; bodies may panic (a workload invariant
/// violation) without poisoning the harness — the message is collected
/// into the report.
pub fn run<'a>(seed: u64, max_steps: u64, bodies: Vec<Box<dyn FnOnce() + Send + 'a>>) -> RunReport {
    install_quiet_hook();
    let threads = bodies.len();
    let sched = Arc::new(Scheduler::new(seed, max_steps, threads));
    let mut panics = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = bodies
            .into_iter()
            .enumerate()
            .map(|(i, body)| {
                let sched = Arc::clone(&sched);
                scope.spawn(move || -> Option<String> {
                    QUIET_PANICS.with(|q| q.set(true));
                    PARTICIPANT.with(|p| p.set(Some(i)));
                    set_thread_observer(Some(sched.clone() as Arc<dyn SchedObserver>));
                    // Wait for the token before touching user code: only
                    // the token holder ever runs, so every recorded event
                    // (including each thread's first) is placed
                    // deterministically.
                    let result = panic::catch_unwind(AssertUnwindSafe(|| {
                        sched.initial_wait(i);
                        body();
                    }));
                    set_thread_observer(None);
                    PARTICIPANT.with(|p| p.set(None));
                    let message = match result {
                        Ok(()) => None,
                        Err(p) if p.is::<AbortUnwind>() => None,
                        Err(p) => Some(panic_message(&*p)),
                    };
                    sched.finish(i);
                    message
                })
            })
            .collect();
        sched.kickoff();
        for (i, handle) in handles.into_iter().enumerate() {
            if let Some(msg) = handle.join().expect("worker wrapper must not panic") {
                panics.push((i, msg));
            }
        }
    });
    let st = sched.state.lock().expect("scheduler state poisoned");
    RunReport {
        trace: st.trace.clone(),
        steps: st.steps,
        abort: st.abort,
        panics,
    }
}

/// FNV-1a over the rendered trace — the bit-reproducibility fingerprint
/// carried into the JSON report.
pub fn trace_hash(trace: &[TraceEvent]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for ev in trace {
        for b in ev.to_string().bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h ^= u64::from(b'\n');
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

//! Multi-tenant serving layer with per-tenant fault isolation.
//!
//! This crate turns the repo's single-VM containment machinery into a
//! serving fleet: N tenant VMs — each with its own simulated memory
//! arena, protection scheme, tag table, and containment state — behind
//! one shared worker pool, driven by a deterministic open-loop traffic
//! generator. The claim under test is the paper's isolation story at
//! fleet scale: one tenant's misbehaving native code (out-of-bounds
//! writes, injected transients, tag exhaustion) is contained to that
//! tenant's VM and absorbed by *graceful degradation* — guarded-copy
//! fallback, per-method quarantine, health-based shedding — while every
//! other tenant keeps serving with zero contained faults, balanced pin
//! books, and latency within bounds.
//!
//! The moving parts, one module each:
//!
//! * [`traffic`] — seeded arrival stream mixing micro churn,
//!   `crates/workloads` kernels, and PR 7 trace-corpus replays.
//! * [`admission`] — bounded per-tenant queue + native-memory budget,
//!   typed [`Rejected`] shedding.
//! * [`health`] — the monotonic `Healthy → Degraded → Quarantined →
//!   Evicted` latch fed by the VM's containment counters.
//! * [`tenant`] — one tenant end to end: VM construction, the serve
//!   loop with bounded deterministic-backoff retry, the quiescence
//!   oracle, eviction.
//! * [`server`] — the shared worker pool and fleet rollup.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod health;
pub mod server;
pub mod tenant;
pub mod traffic;

pub use admission::{Admission, Permit, Rejected};
pub use health::{Health, HealthPolicy, HealthTracker};
pub use server::{RunSummary, Server, ServerConfig};
pub use tenant::{funnel_conservation_violation, RequestOutcome, Tenant, TenantConfig, TenantScheme};
pub use traffic::{Corpus, Request, RequestKind, TrafficConfig};

//! The fleet: N tenants behind one shared worker pool.
//!
//! Workers pull from the pre-generated arrival stream through a shared
//! atomic cursor — open-loop, so a slow or sick tenant cannot stall the
//! stream; its surplus arrivals shed at admission while the workers move
//! on to other tenants' traffic. All cross-thread state is atomics
//! (tenant counters, health latches, the cursor), so the same fleet
//! runs unchanged under real threads or the deterministic scheduler.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use telemetry::fleet::FleetRollup;

use crate::tenant::{Tenant, TenantConfig};
use crate::traffic::Request;

/// Fleet configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// One entry per tenant; tenant ids should be dense from zero.
    pub tenants: Vec<TenantConfig>,
    /// Shared worker-pool size.
    pub workers: usize,
}

impl ServerConfig {
    /// `n` default tenants served by `workers` workers.
    pub fn with_tenants(n: u32, workers: usize) -> ServerConfig {
        ServerConfig {
            tenants: (0..n).map(TenantConfig::new).collect(),
            workers: workers.max(1),
        }
    }
}

/// Aggregate result of one [`Server::run`].
#[derive(Clone, Copy, Debug, Default)]
pub struct RunSummary {
    /// Requests admitted and run to a terminal outcome.
    pub served: u64,
    /// Requests shed at admission.
    pub shed: u64,
    /// Wall-clock time for the whole stream.
    pub elapsed: Duration,
}

/// The multi-tenant serving fleet.
pub struct Server {
    tenants: Vec<Tenant>,
    workers: usize,
}

impl Server {
    /// Builds every tenant VM up front.
    pub fn new(cfg: ServerConfig) -> Server {
        Server {
            tenants: cfg.tenants.into_iter().map(Tenant::new).collect(),
            workers: cfg.workers.max(1),
        }
    }

    /// The fleet's tenants, id order.
    pub fn tenants(&self) -> &[Tenant] {
        &self.tenants
    }

    /// Tenant by id.
    pub fn tenant(&self, id: u32) -> &Tenant {
        self.tenants
            .iter()
            .find(|t| t.config().id == id)
            .expect("tenant id out of range")
    }

    /// Drives the arrival stream to completion over the worker pool and
    /// returns the aggregate summary.
    pub fn run(&self, requests: &[Request]) -> RunSummary {
        let cursor = AtomicUsize::new(0);
        let served = AtomicUsize::new(0);
        let shed = AtomicUsize::new(0);
        let start = Instant::now();
        std::thread::scope(|scope| {
            for _ in 0..self.workers {
                scope.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(req) = requests.get(i) else { break };
                    match self.tenant(req.tenant).serve(req) {
                        Ok(_) => served.fetch_add(1, Ordering::Relaxed),
                        Err(_) => shed.fetch_add(1, Ordering::Relaxed),
                    };
                });
            }
        });
        RunSummary {
            served: served.load(Ordering::Relaxed) as u64,
            shed: shed.load(Ordering::Relaxed) as u64,
            elapsed: start.elapsed(),
        }
    }

    /// Like [`Server::run`], but wall-clock-times every served request
    /// and returns the exact per-request latencies in nanoseconds,
    /// grouped per tenant in [`Server::tenants`] order. Shed requests
    /// are not timed. Timing makes this nondeterministic — it exists
    /// for the serving bench, which needs precise quantiles rather than
    /// the log-2-bucketed telemetry histograms; deterministic harnesses
    /// use [`Server::run`].
    pub fn run_timed(&self, requests: &[Request]) -> (RunSummary, Vec<Vec<u64>>) {
        let cursor = AtomicUsize::new(0);
        let served = AtomicUsize::new(0);
        let shed = AtomicUsize::new(0);
        let slot_of = |id: u32| {
            self.tenants
                .iter()
                .position(|t| t.config().id == id)
                .expect("tenant id out of range")
        };
        let sink: Mutex<Vec<Vec<u64>>> = Mutex::new(vec![Vec::new(); self.tenants.len()]);
        let start = Instant::now();
        std::thread::scope(|scope| {
            for _ in 0..self.workers {
                scope.spawn(|| {
                    let mut local: Vec<Vec<u64>> = vec![Vec::new(); self.tenants.len()];
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(req) = requests.get(i) else { break };
                        let t0 = Instant::now();
                        match self.tenant(req.tenant).serve(req) {
                            Ok(_) => {
                                served.fetch_add(1, Ordering::Relaxed);
                                let ns = u64::try_from(t0.elapsed().as_nanos())
                                    .unwrap_or(u64::MAX);
                                local[slot_of(req.tenant)].push(ns);
                            }
                            Err(_) => {
                                shed.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                    let mut merged = sink.lock().unwrap();
                    for (dst, src) in merged.iter_mut().zip(local) {
                        dst.extend(src);
                    }
                });
            }
        });
        let summary = RunSummary {
            served: served.load(Ordering::Relaxed) as u64,
            shed: shed.load(Ordering::Relaxed) as u64,
            elapsed: start.elapsed(),
        };
        (summary, sink.into_inner().unwrap())
    }

    /// Runs every tenant's quiescence oracle; empty = the whole fleet
    /// is sound.
    pub fn quiesce_all(&self) -> Vec<String> {
        self.tenants.iter().flat_map(Tenant::quiesce).collect()
    }

    /// The fleet telemetry rollup (per-tenant counters + request
    /// latency quantiles).
    pub fn rollup(&self) -> FleetRollup {
        let mut r = FleetRollup::new();
        for t in &self.tenants {
            r.push(t.stats());
        }
        r
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("tenants", &self.tenants.len())
            .field("workers", &self.workers)
            .finish()
    }
}

//! Per-tenant admission control: bounded in-flight queue and a
//! native-memory budget, shedding load instead of blocking neighbors.
//!
//! Every admitted request holds a [`Permit`] for its lifetime; the
//! permit count is the tenant's in-flight depth. A full queue, an
//! exhausted native-memory budget, or a quarantined/evicted tenant
//! rejects the request with a typed [`Rejected`] — the caller sheds it
//! and moves on, so one slow or sick tenant can never occupy the shared
//! worker pool beyond its queue bound.

use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};

use crate::health::Health;

/// Why a request was shed at admission.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Rejected {
    /// The tenant's bounded in-flight queue is at capacity.
    QueueFull {
        /// In-flight depth observed at rejection.
        depth: usize,
        /// The tenant's configured capacity.
        capacity: usize,
    },
    /// The tenant's native-memory budget is exhausted.
    Budget {
        /// Native bytes in use at rejection.
        bytes_in_use: usize,
        /// The tenant's configured budget.
        budget: usize,
    },
    /// The tenant is quarantined or evicted; all traffic sheds.
    TenantQuarantined,
}

impl Rejected {
    /// Stable counter/report label.
    pub fn label(self) -> &'static str {
        match self {
            Rejected::QueueFull { .. } => "queue_full",
            Rejected::Budget { .. } => "budget",
            Rejected::TenantQuarantined => "tenant_quarantined",
        }
    }
}

impl fmt::Display for Rejected {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rejected::QueueFull { depth, capacity } => {
                write!(f, "queue full ({depth}/{capacity} in flight)")
            }
            Rejected::Budget { bytes_in_use, budget } => {
                write!(f, "native-memory budget exhausted ({bytes_in_use}/{budget} bytes)")
            }
            Rejected::TenantQuarantined => f.write_str("tenant quarantined"),
        }
    }
}

/// One tenant's admission state.
#[derive(Debug)]
pub struct Admission {
    capacity: usize,
    budget_bytes: usize,
    depth: AtomicUsize,
}

/// An admitted request's slot in the tenant queue; dropping it releases
/// the slot.
#[derive(Debug)]
pub struct Permit<'a> {
    depth: &'a AtomicUsize,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        self.depth.fetch_sub(1, Ordering::AcqRel);
    }
}

impl Admission {
    /// Admission control with an in-flight `capacity` and a
    /// native-memory budget in bytes (`usize::MAX` = unlimited).
    pub fn new(capacity: usize, budget_bytes: usize) -> Admission {
        Admission {
            capacity: capacity.max(1),
            budget_bytes,
            depth: AtomicUsize::new(0),
        }
    }

    /// Current in-flight depth.
    pub fn depth(&self) -> usize {
        self.depth.load(Ordering::Acquire)
    }

    /// Admits one request or sheds it. Checks are ordered cheapest
    /// first and health takes precedence: a quarantined tenant sheds
    /// everything regardless of queue or budget headroom.
    pub fn try_admit(&self, health: Health, bytes_in_use: usize) -> Result<Permit<'_>, Rejected> {
        if health.sheds_all() {
            return Err(Rejected::TenantQuarantined);
        }
        if bytes_in_use >= self.budget_bytes {
            return Err(Rejected::Budget {
                bytes_in_use,
                budget: self.budget_bytes,
            });
        }
        // CAS loop rather than blind fetch_add so a rejected request
        // never transiently overshoots the bound other workers observe.
        let mut depth = self.depth.load(Ordering::Acquire);
        loop {
            if depth >= self.capacity {
                return Err(Rejected::QueueFull {
                    depth,
                    capacity: self.capacity,
                });
            }
            match self.depth.compare_exchange_weak(
                depth,
                depth + 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Ok(Permit { depth: &self.depth }),
                Err(seen) => depth = seen,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_bound_is_enforced_and_released() {
        let a = Admission::new(2, usize::MAX);
        let p1 = a.try_admit(Health::Healthy, 0).unwrap();
        let _p2 = a.try_admit(Health::Healthy, 0).unwrap();
        assert_eq!(a.depth(), 2);
        match a.try_admit(Health::Healthy, 0) {
            Err(Rejected::QueueFull { depth: 2, capacity: 2 }) => {}
            other => panic!("expected QueueFull, got {other:?}"),
        }
        drop(p1);
        assert_eq!(a.depth(), 1);
        assert!(a.try_admit(Health::Healthy, 0).is_ok());
    }

    #[test]
    fn budget_sheds_before_the_queue() {
        let a = Admission::new(8, 1024);
        let _held = a.try_admit(Health::Healthy, 1023).unwrap();
        match a.try_admit(Health::Degraded, 1024) {
            Err(Rejected::Budget { bytes_in_use: 1024, budget: 1024 }) => {}
            other => panic!("expected Budget, got {other:?}"),
        }
        // Shed requests hold no slot.
        assert_eq!(a.depth(), 1);
    }

    #[test]
    fn quarantined_tenants_shed_everything() {
        let a = Admission::new(8, usize::MAX);
        for health in [Health::Quarantined, Health::Evicted] {
            assert!(matches!(
                a.try_admit(health, 0),
                Err(Rejected::TenantQuarantined)
            ));
        }
        // Degraded tenants still serve.
        assert!(a.try_admit(Health::Degraded, 0).is_ok());
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(Rejected::QueueFull { depth: 1, capacity: 1 }.label(), "queue_full");
        assert_eq!(Rejected::Budget { bytes_in_use: 1, budget: 1 }.label(), "budget");
        assert_eq!(Rejected::TenantQuarantined.label(), "tenant_quarantined");
    }
}

//! The per-tenant health state machine.
//!
//! Health is a monotonic latch over four states: a tenant can only get
//! sicker (`Healthy → Degraded → Quarantined → Evicted`) — recovery
//! would mean re-admitting a VM whose containment history the fleet no
//! longer trusts, which is an operator decision, not an automatic one.
//!
//! The inputs are the VM's own containment counters
//! ([`jni_rt::ContainmentStats`]): contained tag-check faults and
//! tombstones escalate through `Degraded` into `Quarantined`;
//! `TagExhausted` single-acquire degradations and per-method quarantine
//! routing mark the tenant `Degraded` but — by design — **never** push
//! it past that on their own: running on the guarded-copy fallback is a
//! correct (slower) mode, not a fault. `Evicted` is reached only
//! through an explicit eviction threshold or [`HealthTracker::evict`].

use std::sync::atomic::{AtomicU8, Ordering};

use jni_rt::ContainmentStats;

/// A tenant's health state, worst first wins.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Health {
    /// No containment events at all.
    Healthy,
    /// Running, but some requests degraded (contained faults below the
    /// quarantine threshold, `TagExhausted` fallbacks, or per-method
    /// quarantine routing).
    Degraded,
    /// Fault pressure crossed the quarantine thresholds: admission
    /// sheds every new request for this tenant.
    Quarantined,
    /// Removed from the fleet; its VM is being (or has been) torn down.
    Evicted,
}

impl Health {
    /// Display label (stable; used in JSON rollups).
    pub fn label(self) -> &'static str {
        match self {
            Health::Healthy => "healthy",
            Health::Degraded => "degraded",
            Health::Quarantined => "quarantined",
            Health::Evicted => "evicted",
        }
    }

    fn from_u8(v: u8) -> Health {
        match v {
            0 => Health::Healthy,
            1 => Health::Degraded,
            2 => Health::Quarantined,
            _ => Health::Evicted,
        }
    }

    fn as_u8(self) -> u8 {
        match self {
            Health::Healthy => 0,
            Health::Degraded => 1,
            Health::Quarantined => 2,
            Health::Evicted => 3,
        }
    }

    /// Whether admission control sheds all traffic in this state.
    pub fn sheds_all(self) -> bool {
        self >= Health::Quarantined
    }
}

/// Thresholds mapping containment counters to health states.
#[derive(Clone, Copy, Debug)]
pub struct HealthPolicy {
    /// Contained faults at which the tenant leaves `Healthy`.
    pub degrade_after_contained: u64,
    /// Contained faults at which the tenant is quarantined.
    pub quarantine_after_contained: u64,
    /// Tombstones at which the tenant is quarantined.
    pub quarantine_after_tombstones: u64,
    /// Contained faults at which the tenant is evicted outright
    /// (`u64::MAX` = never automatically; eviction is an operator or
    /// end-of-run action).
    pub evict_after_contained: u64,
}

impl Default for HealthPolicy {
    fn default() -> HealthPolicy {
        HealthPolicy {
            degrade_after_contained: 1,
            quarantine_after_contained: 4,
            quarantine_after_tombstones: 4,
            evict_after_contained: u64::MAX,
        }
    }
}

/// The monotonic health latch for one tenant.
#[derive(Debug)]
pub struct HealthTracker {
    state: AtomicU8,
    policy: HealthPolicy,
}

impl HealthTracker {
    /// A healthy tenant under `policy`.
    pub fn new(policy: HealthPolicy) -> HealthTracker {
        HealthTracker {
            state: AtomicU8::new(Health::Healthy.as_u8()),
            policy,
        }
    }

    /// Current state.
    pub fn current(&self) -> Health {
        Health::from_u8(self.state.load(Ordering::Acquire))
    }

    /// Folds the VM's containment counters into the latch and returns
    /// the (possibly escalated) state. Concurrent observers race
    /// benignly: `fetch_max` keeps the latch monotonic.
    pub fn observe(&self, stats: &ContainmentStats) -> Health {
        let p = &self.policy;
        let target = if stats.contained_faults >= p.evict_after_contained {
            Health::Evicted
        } else if stats.contained_faults >= p.quarantine_after_contained
            || stats.tombstones >= p.quarantine_after_tombstones
        {
            Health::Quarantined
        } else if stats.contained_faults >= p.degrade_after_contained
            || stats.degraded_tag_exhaustion > 0
            || stats.degraded_quarantine > 0
            || stats.quarantined_methods > 0
        {
            // TagExhausted fallbacks and per-method quarantine routing
            // are correct degraded operation — they never escalate a
            // tenant past Degraded by themselves.
            Health::Degraded
        } else {
            Health::Healthy
        };
        let prev = self.state.fetch_max(target.as_u8(), Ordering::AcqRel);
        Health::from_u8(prev.max(target.as_u8()))
    }

    /// Latches `Evicted` (terminal).
    pub fn evict(&self) {
        self.state
            .fetch_max(Health::Evicted.as_u8(), Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> ContainmentStats {
        ContainmentStats::default()
    }

    #[test]
    fn health_is_a_monotonic_latch() {
        let t = HealthTracker::new(HealthPolicy::default());
        assert_eq!(t.current(), Health::Healthy);
        let mut s = stats();
        s.contained_faults = 1;
        assert_eq!(t.observe(&s), Health::Degraded);
        // Counters going "quiet" again does not heal the tenant.
        assert_eq!(t.observe(&stats()), Health::Degraded);
        s.contained_faults = 4;
        assert_eq!(t.observe(&s), Health::Quarantined);
        assert!(t.current().sheds_all());
        t.evict();
        assert_eq!(t.current(), Health::Evicted);
    }

    #[test]
    fn tag_exhaustion_caps_at_degraded() {
        let t = HealthTracker::new(HealthPolicy::default());
        let mut s = stats();
        s.degraded_tag_exhaustion = 1_000_000;
        assert_eq!(t.observe(&s), Health::Degraded);
        s.degraded_quarantine = 1_000_000;
        s.quarantined_methods = 50;
        assert_eq!(t.observe(&s), Health::Degraded);
        assert!(!t.current().sheds_all());
    }

    #[test]
    fn tombstones_quarantine_independently_of_fault_count() {
        let t = HealthTracker::new(HealthPolicy {
            quarantine_after_tombstones: 2,
            ..HealthPolicy::default()
        });
        let mut s = stats();
        s.tombstones = 2;
        assert_eq!(t.observe(&s), Health::Quarantined);
    }

    #[test]
    fn eviction_threshold_fires() {
        let t = HealthTracker::new(HealthPolicy {
            evict_after_contained: 10,
            ..HealthPolicy::default()
        });
        let mut s = stats();
        s.contained_faults = 10;
        assert_eq!(t.observe(&s), Health::Evicted);
    }
}

//! One tenant: its own VM, protection scheme, health latch, admission
//! state, and counters — the fault-isolation unit of the fleet.
//!
//! A tenant VM is built exactly like the containment stress VMs: an
//! MTE4JNI primary over the chosen table backend with a guarded-copy
//! quarantine fallback under [`FaultPolicy::Contain`] (or guarded copy
//! as the primary for the ablation tenant). Everything a request does
//! happens on this tenant's own simulated memory, heap, and tag table,
//! so a neighbor's faults cannot reach it by construction — what the
//! serving layer adds is *resource* isolation (bounded queue, memory
//! budget, shared-pool shedding) and the health machinery that turns
//! containment telemetry into admission decisions.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use art_heap::HeapConfig;
use guarded_copy::GuardedCopy;
use jni_rt::{
    ContainmentConfig, ContainmentStats, FaultPolicy, JniEnv, JniError, NativeKind, Protection,
    ReleaseMode, Vm,
};
use mte4jni::{Mte4Jni, TableBackend, TableConfig};
use mte_sim::inject::{self, FaultPlan, InjectCounters};
use mte_sim::sync::yield_point;
use mte_sim::{MemError, MemoryConfig, TcfMode};
use trace::Backend;

use crate::admission::{Admission, Rejected};
use crate::health::{Health, HealthPolicy, HealthTracker};
use crate::traffic::{mix, Request, RequestKind};

/// Base address of tenant 0's simulated memory; each tenant's arena is
/// `TENANT_STRIDE` above its predecessor so addresses in tombstones and
/// logs identify the tenant at a glance.
pub const TENANT_BASE: u64 = 0x7a00_0000_0000;
/// Address stride between tenant arenas.
pub const TENANT_STRIDE: u64 = 0x1_0000_0000;

/// Protection scheme a tenant runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TenantScheme {
    /// MTE4JNI over the lock-free atomic-entry table (default).
    LockFree,
    /// MTE4JNI over the paper's two-tier locking table.
    TwoTier,
    /// MTE4JNI over the global-lock ablation table.
    Global,
    /// Guarded copy as the primary (no MTE).
    Guarded,
}

impl TenantScheme {
    /// All schemes, report order.
    pub const ALL: [TenantScheme; 4] = [
        TenantScheme::LockFree,
        TenantScheme::TwoTier,
        TenantScheme::Global,
        TenantScheme::Guarded,
    ];

    /// Stable label, matching the stress harness scheme labels.
    pub fn label(self) -> &'static str {
        match self {
            TenantScheme::LockFree => "lock-free",
            TenantScheme::TwoTier => "two-tier",
            TenantScheme::Global => "global",
            TenantScheme::Guarded => "guarded",
        }
    }

    /// Parses [`Self::label`] (case-insensitive).
    pub fn parse(s: &str) -> Option<TenantScheme> {
        TenantScheme::ALL
            .into_iter()
            .find(|k| k.label().eq_ignore_ascii_case(s))
    }

    /// The tag-table backend (MTE schemes only).
    fn backend(self) -> Option<TableBackend> {
        match self {
            TenantScheme::LockFree => Some(TableBackend::LockFree),
            TenantScheme::TwoTier => Some(TableBackend::TwoTier),
            TenantScheme::Global => Some(TableBackend::Global),
            TenantScheme::Guarded => None,
        }
    }

    /// The matching trace-replay backend.
    pub fn replay_backend(self) -> Backend {
        match self {
            TenantScheme::LockFree => Backend::LockFree,
            TenantScheme::TwoTier => Backend::TwoTier,
            TenantScheme::Global => Backend::Global,
            TenantScheme::Guarded => Backend::Guarded,
        }
    }
}

/// Per-tenant build and policy knobs.
#[derive(Clone, Copy, Debug)]
pub struct TenantConfig {
    /// Tenant index within the fleet.
    pub id: u32,
    /// Protection scheme.
    pub scheme: TenantScheme,
    /// Simulated-memory arena size.
    pub heap_bytes: usize,
    /// Bounded in-flight queue capacity.
    pub queue_capacity: usize,
    /// Native-memory budget (`usize::MAX` = unlimited).
    pub budget_bytes: usize,
    /// VM-level per-method quarantine threshold.
    pub quarantine_threshold: u32,
    /// VM-level transient retry budget inside acquire/release.
    pub transient_retries: u32,
    /// Request-level retries on transient errors (deterministic
    /// backoff between attempts).
    pub request_retries: u32,
    /// Health thresholds.
    pub policy: HealthPolicy,
    /// Fault injection armed for this tenant's requests (the noisy
    /// neighbor); `None` for clean tenants.
    pub fault_plan: Option<FaultPlan>,
    /// Sweep the tenant heap every this many admitted requests.
    pub sweep_every: u64,
}

impl TenantConfig {
    /// Defaults for tenant `id`.
    pub fn new(id: u32) -> TenantConfig {
        TenantConfig {
            id,
            scheme: TenantScheme::LockFree,
            heap_bytes: 1 << 22,
            queue_capacity: 8,
            budget_bytes: usize::MAX,
            quarantine_threshold: 2,
            transient_retries: 4,
            request_retries: 4,
            policy: HealthPolicy::default(),
            fault_plan: None,
            sweep_every: 64,
        }
    }
}

/// How an admitted request ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RequestOutcome {
    /// Ran to completion normally.
    Completed,
    /// A tag-check fault was contained at the trampoline; the VM
    /// survived and reclaimed the frame's borrows.
    Contained,
    /// The guarded-copy scheme detected corruption at release
    /// (CheckJNI abort) — graceful degradation's detection path.
    Detected,
    /// Gave up after the transient-retry budget.
    Failed,
}

#[derive(Debug, Default)]
struct Counters {
    admitted: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    shed_queue: AtomicU64,
    shed_budget: AtomicU64,
    shed_quarantined: AtomicU64,
    retries: AtomicU64,
    replay_violations: AtomicU64,
}

/// One tenant of the fleet.
pub struct Tenant {
    cfg: TenantConfig,
    vm: Vm,
    mte: Option<Arc<Mte4Jni>>,
    guarded: Arc<GuardedCopy>,
    health: HealthTracker,
    admission: Admission,
    counters: Counters,
    inject_counters: Arc<InjectCounters>,
}

impl Tenant {
    /// Builds the tenant VM for `cfg` (same shape as the containment
    /// stress VMs; guarded-copy tenants mirror the guarded stress VMs).
    pub fn new(cfg: TenantConfig) -> Tenant {
        let memory = MemoryConfig {
            base: TENANT_BASE + u64::from(cfg.id) * TENANT_STRIDE,
            size: cfg.heap_bytes,
        };
        let guarded = Arc::new(GuardedCopy::new());
        let (vm, mte) = match cfg.scheme.backend() {
            Some(backend) => {
                let scheme = Arc::new(Mte4Jni::with_config(TableConfig {
                    backend,
                    ..TableConfig::default()
                }));
                let vm = Vm::builder()
                    .heap_config(HeapConfig {
                        memory,
                        ..HeapConfig::mte4jni()
                    })
                    .check_mode(TcfMode::Sync)
                    .protection(Arc::clone(&scheme) as Arc<dyn Protection>)
                    .fallback_protection(Arc::clone(&guarded) as Arc<dyn Protection>)
                    .fault_policy(FaultPolicy::Contain)
                    .containment_config(ContainmentConfig {
                        quarantine_threshold: cfg.quarantine_threshold,
                        transient_retries: cfg.transient_retries,
                        ..ContainmentConfig::default()
                    })
                    .build();
                (vm, Some(scheme))
            }
            None => {
                let vm = Vm::builder()
                    .heap_config(HeapConfig {
                        memory,
                        ..HeapConfig::stock_art()
                    })
                    .protection(Arc::clone(&guarded) as Arc<dyn Protection>)
                    .build();
                (vm, None)
            }
        };
        Tenant {
            admission: Admission::new(cfg.queue_capacity, cfg.budget_bytes),
            health: HealthTracker::new(cfg.policy),
            counters: Counters::default(),
            inject_counters: Arc::new(InjectCounters::default()),
            cfg,
            vm,
            mte,
            guarded,
        }
    }

    /// The tenant's configuration.
    pub fn config(&self) -> &TenantConfig {
        &self.cfg
    }

    /// The tenant VM.
    pub fn vm(&self) -> &Vm {
        self.vm_ref()
    }

    fn vm_ref(&self) -> &Vm {
        &self.vm
    }

    /// The MTE4JNI scheme, for oracle introspection (`None` for
    /// guarded-copy tenants).
    pub fn scheme(&self) -> Option<&Mte4Jni> {
        self.mte.as_deref()
    }

    /// Health after folding in the latest containment counters.
    pub fn health(&self) -> Health {
        self.health.observe(&self.vm.containment_stats())
    }

    /// The VM's containment counters.
    pub fn containment_stats(&self) -> ContainmentStats {
        self.vm.containment_stats()
    }

    /// Faults the injector forced on this tenant.
    pub fn injected_faults(&self) -> u64 {
        self.inject_counters.total()
    }

    /// Serves one request end to end: admission, bounded retry with
    /// deterministic backoff, outcome accounting, latency telemetry.
    ///
    /// # Errors
    ///
    /// The typed shed reason when admission rejects the request.
    pub fn serve(&self, req: &Request) -> Result<RequestOutcome, Rejected> {
        let health = self.health();
        let bytes_in_use = self.vm.heap().native_alloc().stats().bytes_in_use as usize;
        let permit = match self.admission.try_admit(health, bytes_in_use) {
            Ok(p) => p,
            Err(r) => {
                match r {
                    Rejected::QueueFull { .. } => &self.counters.shed_queue,
                    Rejected::Budget { .. } => &self.counters.shed_budget,
                    Rejected::TenantQuarantined => &self.counters.shed_quarantined,
                }
                .fetch_add(1, Ordering::Relaxed);
                return Err(r);
            }
        };
        let admitted = self.counters.admitted.fetch_add(1, Ordering::Relaxed) + 1;
        // Periodic housekeeping sweep, always disarmed: the collector is
        // a runtime-internal path whose tag stores are infallible by
        // contract, so injected faults must never reach it.
        if admitted.is_multiple_of(self.cfg.sweep_every.max(1)) {
            let _ = self.vm.heap().sweep();
        }
        let t0 = if telemetry::enabled() {
            Some(Instant::now())
        } else {
            None
        };
        let thread = self.vm.attach_thread("serve");
        let env = self.vm.env(&thread);
        let mut attempt = 0u32;
        let outcome = loop {
            match self.execute(&env, req, attempt) {
                Ok(o) => break o,
                Err(e)
                    if (e.is_transient() || matches!(e, JniError::Heap(_)))
                        && attempt < self.cfg.request_retries =>
                {
                    attempt += 1;
                    self.counters.retries.fetch_add(1, Ordering::Relaxed);
                    if matches!(e, JniError::Heap(_)) {
                        // Allocation pressure: reclaim garbage before
                        // the retry instead of burning the budget.
                        let _ = self.vm.heap().sweep();
                    }
                    // Deterministic backoff: linear in the attempt
                    // number, expressed in schedule points so stress
                    // schedules explore the retry interleavings.
                    for _ in 0..attempt {
                        yield_point("serve-backoff");
                    }
                }
                Err(_) => break RequestOutcome::Failed,
            }
        };
        drop(env);
        drop(permit);
        if outcome == RequestOutcome::Failed {
            self.counters.failed.fetch_add(1, Ordering::Relaxed);
        } else {
            self.counters.completed.fetch_add(1, Ordering::Relaxed);
        }
        if let Some(t0) = t0 {
            telemetry::fleet::record_request_latency(
                self.cfg.id,
                self.cfg.scheme.label(),
                t0.elapsed(),
            );
        }
        Ok(outcome)
    }

    /// Runs the request body once. Transient errors propagate for the
    /// caller's retry loop; tolerated terminal outcomes map to a
    /// [`RequestOutcome`].
    fn execute(
        &self,
        env: &JniEnv<'_>,
        req: &Request,
        attempt: u32,
    ) -> Result<RequestOutcome, JniError> {
        // Replay requests build and drive their own VM; the tenant's
        // injection plan must not leak into them.
        let armed = match (&self.cfg.fault_plan, &req.kind) {
            (Some(plan), RequestKind::Micro { .. } | RequestKind::Kernel { .. })
                if plan.is_active() =>
            {
                inject::install(
                    *plan,
                    mix(req.seed, u64::from(attempt) + 1),
                    Arc::clone(&self.inject_counters),
                );
                true
            }
            _ => false,
        };
        let result = match req.kind {
            RequestKind::Micro { oob, method } => self.run_micro(env, oob, method),
            RequestKind::Kernel { workload, scale } => {
                let spec = workloads::find_workload(workload)
                    .expect("serving kernels are a curated subset");
                map_outcome((spec.run)(env, req.seed, scale).map(|_| ()))
            }
            RequestKind::Replay { corpus } => {
                let trace = corpus
                    .decode()
                    .expect("committed corpus traces always decode");
                match trace::replay(&trace, self.cfg.scheme.replay_backend()) {
                    Ok(digest) => {
                        let violations = digest.conservation_violations().len() as u64;
                        self.counters
                            .replay_violations
                            .fetch_add(violations, Ordering::Relaxed);
                        Ok(RequestOutcome::Completed)
                    }
                    Err(_) => {
                        self.counters.replay_violations.fetch_add(1, Ordering::Relaxed);
                        Ok(RequestOutcome::Failed)
                    }
                }
            }
        };
        if armed {
            inject::clear();
        }
        result
    }

    /// The micro churn unit — the containment-stress round adapted to a
    /// request: allocate a 16-int array, enter a native frame, stream
    /// over it, optionally write out of bounds, release.
    fn run_micro(
        &self,
        env: &JniEnv<'_>,
        oob: bool,
        method: &'static str,
    ) -> Result<RequestOutcome, JniError> {
        let a = env.new_int_array_from(&[7; 16])?;
        let result = env.call_native(method, NativeKind::Normal, |env| {
            let elems = env.get_primitive_array_critical(&a)?;
            let mem = env.native_mem();
            let mut s = 0u64;
            for i in 0..16 {
                match elems.read_i32(&mem, i) {
                    Ok(v) => s = s.wrapping_add(v as u64),
                    // A tag-check fault kills the native frame on the
                    // spot; containment reclaims the leaked borrow.
                    Err(e @ MemError::TagCheck(_)) => return Err(e.into()),
                    // Injected transient read failures: well-behaved
                    // native code shrugs and still releases below.
                    Err(_) => {}
                }
            }
            if oob {
                // 16-int array: index 40 is past the payload — a sync
                // tag fault under MTE4JNI, red-zone corruption caught at
                // release under a (quarantined) guarded copy.
                elems.write_i32(&mem, 40, 0x0BAD)?;
            }
            env.release_primitive_array_critical(&a, elems, ReleaseMode::Abort)?;
            Ok(s)
        });
        map_outcome(result.map(|_| ()))
    }

    /// Latches this tenant `Evicted` and reclaims what it can without
    /// tearing the VM down (the VM drops with the fleet): a final sweep
    /// after the health latch guarantees no new request will be
    /// admitted while the heap quiesces. In-flight environments force-
    /// release their borrows on drop ([`JniEnv`]'s teardown backstop),
    /// so by the time the fleet drops this VM the funnel books balance.
    pub fn evict(&self) {
        self.health.evict();
        let _ = self.vm.heap().sweep();
    }

    /// The post-run quiescence oracle — the containment-stress checks
    /// applied to one tenant: zero stale table entries, the funnel
    /// conservation law, zero leaked shadows or native bytes, balanced
    /// pins. Returns human-readable violations (empty = sound).
    pub fn quiesce(&self) -> Vec<String> {
        let mut v = Vec::new();
        let tag = |msg: String| format!("tenant {}: {msg}", self.cfg.id);
        // Safepoint first: flush borrow-stash credits and purge parked
        // entries so the checks see the post-safepoint state.
        let _ = self.vm.heap().sweep();
        if let Some(scheme) = &self.mte {
            let tracked = scheme.table().tracked_objects();
            if tracked != 0 {
                v.push(tag(format!("{tracked} stale table entries after quiescence")));
            }
            if let Some(m) = funnel_conservation_violation(scheme) {
                v.push(tag(m));
            }
        }
        let shadows = self.guarded.tracked_shadows();
        if shadows != 0 {
            v.push(tag(format!("{shadows} guarded-copy shadows leaked")));
        }
        let in_use = self.vm.heap().native_alloc().stats().bytes_in_use;
        if in_use != 0 {
            v.push(tag(format!("{in_use} native bytes leaked")));
        }
        let hs = self.vm.heap().stats();
        if hs.pinned_objects != 0 {
            v.push(tag(format!("{} objects still pinned", hs.pinned_objects)));
        }
        if hs.pins_total != hs.unpins_total {
            v.push(tag(format!(
                "{} pins but {} unpins",
                hs.pins_total, hs.unpins_total
            )));
        }
        v
    }

    /// This tenant's row for the fleet rollup.
    pub fn stats(&self) -> telemetry::fleet::TenantStats {
        let cs = self.vm.containment_stats();
        let c = &self.counters;
        telemetry::fleet::TenantStats {
            tenant: self.cfg.id,
            scheme: self.cfg.scheme.label().to_owned(),
            health: self.health().label().to_owned(),
            admitted: c.admitted.load(Ordering::Relaxed),
            completed: c.completed.load(Ordering::Relaxed),
            shed_queue_full: c.shed_queue.load(Ordering::Relaxed),
            shed_budget: c.shed_budget.load(Ordering::Relaxed),
            shed_quarantined: c.shed_quarantined.load(Ordering::Relaxed),
            contained_faults: cs.contained_faults,
            degraded_exhaust: cs.degraded_tag_exhaustion,
            degraded_quarantine: cs.degraded_quarantine,
            retries: c.retries.load(Ordering::Relaxed),
            tombstones: cs.tombstones,
        }
    }

    /// Requests that exhausted their retry budget.
    pub fn failed(&self) -> u64 {
        self.counters.failed.load(Ordering::Relaxed)
    }

    /// Conservation violations observed by this tenant's replay
    /// requests (must stay zero).
    pub fn replay_violations(&self) -> u64 {
        self.counters.replay_violations.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for Tenant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tenant")
            .field("id", &self.cfg.id)
            .field("scheme", &self.cfg.scheme.label())
            .field("health", &self.health.current().label())
            .finish_non_exhaustive()
    }
}

/// Maps a request body's terminal result to an outcome, propagating
/// retryable errors.
fn map_outcome(result: Result<(), JniError>) -> Result<RequestOutcome, JniError> {
    match result {
        Ok(()) => Ok(RequestOutcome::Completed),
        Err(JniError::ContainedFault { .. }) => Ok(RequestOutcome::Contained),
        Err(JniError::CheckJniAbort(_)) => Ok(RequestOutcome::Detected),
        Err(e) => Err(e),
    }
}

/// The funnel-level conservation law (DESIGN §15): every fresh acquire
/// is freed exactly once — typed release, stash flush/eviction, or
/// GC-safepoint purge.
pub fn funnel_conservation_violation(scheme: &Mte4Jni) -> Option<String> {
    let s = scheme.stats();
    let counter = |name: &str| {
        scheme
            .counters()
            .into_iter()
            .find(|(k, _)| *k == name)
            .map_or(0, |(_, v)| v)
    };
    let flush_frees = counter("atomic_stash_flush_frees");
    let purge_frees = counter("safepoint_purge_frees");
    if s.acquires - s.shared_acquires != s.tag_frees + flush_frees + purge_frees {
        Some(format!(
            "funnel conservation broken: {} acquires - {} shared != \
             {} tag frees + {} stash-flush frees + {} safepoint purges",
            s.acquires, s.shared_acquires, s.tag_frees, flush_frees, purge_frees
        ))
    } else {
        None
    }
}

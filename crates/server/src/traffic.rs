//! The deterministic open-loop traffic generator.
//!
//! Arrivals are generated up front from one seed: the whole fleet's
//! request stream — which tenant each arrival lands on, what kind of
//! work it carries, and the per-request injection/behavior seeds — is a
//! pure function of `(TrafficConfig, tenant count)`. The worker pool
//! consumes the stream open-loop (arrivals do not wait for completions;
//! a slow tenant's surplus is shed by admission control, not queued
//! without bound).
//!
//! Request kinds mirror the repo's three workload sources:
//!
//! * **Micro** — the containment-stress churn unit: allocate a small
//!   array, enter a native frame, stream over it, optionally go out of
//!   bounds (the noisy tenant's fault driver), release.
//! * **Kernel** — a GeekBench-style kernel from `crates/workloads`.
//! * **Replay** — a golden trace from the PR 7 corpus re-driven on the
//!   tenant's backend via `trace::replay`.

use trace::{Trace, TraceError};

/// Splitmix-style mixer shared by every deterministic draw in this
/// crate (same constants as the stress harness, so seeds compose).
pub(crate) fn mix(seed: u64, salt: u64) -> u64 {
    let mut x = seed ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// One ppm draw: true with probability `ppm / 1_000_000`.
fn draw(seed: u64, salt: u64, ppm: u32) -> bool {
    mix(seed, salt) % 1_000_000 < u64::from(ppm)
}

/// A golden trace from the committed corpus (`crates/trace/corpus/`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Corpus {
    /// The Asset Compression workload recording.
    AssetCompression,
    /// The out-of-bounds containment scenario.
    OobContain,
    /// The spurious-injection scenario.
    SpuriousInject,
}

impl Corpus {
    /// All corpus traces, in replay-cost order.
    pub const ALL: [Corpus; 3] = [
        Corpus::OobContain,
        Corpus::SpuriousInject,
        Corpus::AssetCompression,
    ];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Corpus::AssetCompression => "asset_compression",
            Corpus::OobContain => "oob_contain",
            Corpus::SpuriousInject => "spurious_inject",
        }
    }

    /// The committed trace bytes.
    pub fn bytes(self) -> &'static [u8] {
        match self {
            Corpus::AssetCompression => {
                include_bytes!("../../trace/corpus/asset_compression.trc")
            }
            Corpus::OobContain => include_bytes!("../../trace/corpus/oob_contain.trc"),
            Corpus::SpuriousInject => include_bytes!("../../trace/corpus/spurious_inject.trc"),
        }
    }

    /// Decodes the committed trace.
    ///
    /// # Errors
    ///
    /// Corrupt committed corpus (a repo integrity failure, not a
    /// runtime state).
    pub fn decode(self) -> Result<Trace, TraceError> {
        Trace::decode(self.bytes())
    }
}

/// Micro-request native method names; repeated out-of-bounds hits on
/// one name drive the VM's per-method quarantine, exactly like the
/// containment stress workers.
pub const MICRO_METHODS: [&str; 2] = ["serve_churn", "serve_scan"];

/// The serving kernel subset: cheap representatives of the one-shot
/// and intensive access classes, so a request stays microseconds, not
/// milliseconds.
pub const SERVING_KERNELS: [&str; 4] =
    ["File Compression", "Photo Filter", "Navigation", "Text Processing"];

/// What one request asks the tenant VM to do.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RequestKind {
    /// Array-churn unit of work.
    Micro {
        /// Whether the native frame writes out of bounds.
        oob: bool,
        /// Native method the frame is attributed to.
        method: &'static str,
    },
    /// A `crates/workloads` kernel at the given scale.
    Kernel {
        /// Workload name (a [`SERVING_KERNELS`] entry).
        workload: &'static str,
        /// Kernel scale factor.
        scale: u32,
    },
    /// Replay a corpus trace on the tenant's backend.
    Replay {
        /// Which golden trace.
        corpus: Corpus,
    },
}

/// One arrival in the fleet's request stream.
#[derive(Clone, Copy, Debug)]
pub struct Request {
    /// Target tenant.
    pub tenant: u32,
    /// Per-tenant sequence number (0-based).
    pub index: u64,
    /// Per-request seed: drives the noisy tenant's injection RNG and
    /// any in-request randomness, independent of which worker thread
    /// executes it.
    pub seed: u64,
    /// The work itself.
    pub kind: RequestKind,
}

/// Generator knobs. Rates are parts-per-million of requests.
#[derive(Clone, Copy, Debug)]
pub struct TrafficConfig {
    /// Master seed; everything derives from it.
    pub seed: u64,
    /// Requests generated per tenant.
    pub per_tenant: u64,
    /// Fraction of requests that run a kernel instead of a micro unit.
    pub kernel_ppm: u32,
    /// Fraction of requests that replay a corpus trace.
    pub replay_ppm: u32,
    /// The tenant whose micro requests go out of bounds (the noisy
    /// neighbor), if any.
    pub noisy_tenant: Option<u32>,
    /// Out-of-bounds rate for the noisy tenant's micro requests.
    pub noisy_oob_ppm: u32,
}

impl Default for TrafficConfig {
    fn default() -> TrafficConfig {
        TrafficConfig {
            seed: 0x5EED_5E4F,
            per_tenant: 200,
            kernel_ppm: 40_000,
            replay_ppm: 2_000,
            noisy_tenant: None,
            noisy_oob_ppm: 333_333,
        }
    }
}

impl TrafficConfig {
    /// The request kind and behavior for `(tenant, index)` — exposed so
    /// the deterministic stress harness can drive per-tenant streams
    /// without materializing the merged arrival order.
    pub fn request(&self, tenant: u32, index: u64) -> Request {
        let salt = (u64::from(tenant) << 40) ^ index;
        let seed = mix(self.seed, salt ^ 0x0A11_5EED);
        let kind = if draw(self.seed, salt ^ 0x4E9A, self.replay_ppm) {
            let corpus = Corpus::ALL[(mix(self.seed, salt ^ 0xC0_4155) % 3) as usize];
            RequestKind::Replay { corpus }
        } else if draw(self.seed, salt ^ 0x7E44, self.kernel_ppm) {
            let workload = SERVING_KERNELS
                [(mix(self.seed, salt ^ 0x13_37) % SERVING_KERNELS.len() as u64) as usize];
            RequestKind::Kernel { workload, scale: 1 }
        } else {
            let oob = self.noisy_tenant == Some(tenant)
                && draw(self.seed, salt ^ 0x0B_AD, self.noisy_oob_ppm);
            let method =
                MICRO_METHODS[(mix(self.seed, salt ^ 0x9E7B) % MICRO_METHODS.len() as u64) as usize];
            RequestKind::Micro { oob, method }
        };
        Request { tenant, index, seed, kind }
    }

    /// Generates the merged open-loop arrival stream for `tenants`
    /// tenants: each tenant contributes exactly `per_tenant` requests,
    /// interleaved by a seeded weighted merge (arrival order is a pure
    /// function of the seed).
    pub fn generate(&self, tenants: u32) -> Vec<Request> {
        let n = tenants as usize;
        let mut remaining: Vec<u64> = vec![self.per_tenant; n];
        let mut issued: Vec<u64> = vec![0; n];
        let mut total: u64 = self.per_tenant * tenants as u64;
        let mut out = Vec::with_capacity(total as usize);
        let mut step = 0u64;
        while total > 0 {
            // Weighted draw over tenants by their remaining quota: the
            // stream stays interleaved end to end instead of draining
            // tenants one after another.
            let mut pick = mix(self.seed, 0xA441 ^ step) % total;
            let mut tenant = 0usize;
            for (t, &rem) in remaining.iter().enumerate() {
                if pick < rem {
                    tenant = t;
                    break;
                }
                pick -= rem;
            }
            remaining[tenant] -= 1;
            total -= 1;
            let index = issued[tenant];
            issued[tenant] += 1;
            out.push(self.request(tenant as u32, index));
            step += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_exact() {
        let cfg = TrafficConfig { per_tenant: 50, ..TrafficConfig::default() };
        let a = cfg.generate(4);
        let b = cfg.generate(4);
        assert_eq!(a.len(), 200);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!((x.tenant, x.index, x.seed, x.kind), (y.tenant, y.index, y.seed, y.kind));
        }
        // Exactly per_tenant requests per tenant, indices sequential.
        for t in 0..4u32 {
            let idx: Vec<u64> = a.iter().filter(|r| r.tenant == t).map(|r| r.index).collect();
            assert_eq!(idx, (0..50).collect::<Vec<_>>());
        }
    }

    #[test]
    fn only_the_noisy_tenant_goes_out_of_bounds() {
        let cfg = TrafficConfig {
            per_tenant: 400,
            noisy_tenant: Some(0),
            noisy_oob_ppm: 500_000,
            ..TrafficConfig::default()
        };
        let stream = cfg.generate(3);
        let oob = |t: u32| {
            stream
                .iter()
                .filter(|r| r.tenant == t)
                .filter(|r| matches!(r.kind, RequestKind::Micro { oob: true, .. }))
                .count()
        };
        assert!(oob(0) > 50, "noisy tenant must go oob often: {}", oob(0));
        assert_eq!(oob(1), 0);
        assert_eq!(oob(2), 0);
    }

    #[test]
    fn mix_includes_kernels_and_replays() {
        let cfg = TrafficConfig {
            per_tenant: 2000,
            kernel_ppm: 100_000,
            replay_ppm: 20_000,
            ..TrafficConfig::default()
        };
        let stream = cfg.generate(1);
        let kernels = stream.iter().filter(|r| matches!(r.kind, RequestKind::Kernel { .. })).count();
        let replays = stream.iter().filter(|r| matches!(r.kind, RequestKind::Replay { .. })).count();
        assert!(kernels > 100, "kernels: {kernels}");
        assert!(replays > 10, "replays: {replays}");
    }

    #[test]
    fn corpus_traces_decode() {
        for c in Corpus::ALL {
            let t = c.decode().unwrap_or_else(|e| panic!("{}: {e:?}", c.label()));
            assert!(!t.events.is_empty(), "{} is empty", c.label());
        }
    }

    #[test]
    fn per_request_view_matches_the_stream() {
        let cfg = TrafficConfig { per_tenant: 30, ..TrafficConfig::default() };
        for r in cfg.generate(2) {
            let direct = cfg.request(r.tenant, r.index);
            assert_eq!((direct.seed, direct.kind), (r.seed, r.kind));
        }
    }
}

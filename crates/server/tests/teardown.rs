//! Satellite regression: evicting a tenant with a live
//! `GetPrimitiveArrayCritical` borrow must force-release the borrow
//! through the pin-ledger funnel before the heap drops, keeping the
//! three-term conservation law and the pin books balanced.

use server::{funnel_conservation_violation, Tenant, TenantConfig, TenantScheme};

#[test]
fn evicting_a_tenant_with_a_live_critical_borrow_balances_the_funnel() {
    let tenant = Tenant::new(TenantConfig::new(0));
    let thread = tenant.vm().attach_thread("teardown");
    let env = tenant.vm().env(&thread);
    let a = env.new_int_array_from(&[9; 16]).unwrap();
    let elems = env.get_primitive_array_critical(&a).unwrap();
    // Read through the borrow so the acquire is observably real.
    assert_eq!(elems.read_i32(&env.native_mem(), 3).unwrap(), 9);
    assert_eq!(env.critical_depth(), 1);

    // Evict mid-flight: the health latch flips first so no new request
    // can be admitted, then the env teardown backstop force-releases
    // the open borrow before the heap is dropped.
    tenant.evict();
    assert!(tenant.health().sheds_all());
    drop(env);

    // Pin books balanced, no stale table entries, no leaked shadows.
    // (`quiesce` sweeps first, so force-released credits parked in the
    // thread-local stash are purged before the books are read.)
    let violations = tenant.quiesce();
    assert!(violations.is_empty(), "teardown leaked: {violations:?}");

    // Three-term conservation: acquires - shared == typed frees +
    // stash-flush frees + safepoint purges.
    let scheme = tenant.scheme().expect("mte tenant");
    assert_eq!(funnel_conservation_violation(scheme), None);
    let hs = tenant.vm().heap().stats();
    assert_eq!(hs.pinned_objects, 0);
    assert_eq!(hs.pins_total, hs.unpins_total);
}

#[test]
fn force_release_reclaims_every_open_borrow() {
    let tenant = Tenant::new(TenantConfig::new(1));
    let thread = tenant.vm().attach_thread("teardown");
    let env = tenant.vm().env(&thread);
    let a = env.new_int_array_from(&[1; 8]).unwrap();
    let b = env.new_int_array_from(&[2; 8]).unwrap();
    let _ea = env.get_primitive_array_critical(&a).unwrap();
    let _eb = env.get_primitive_array_critical(&b).unwrap();
    assert_eq!(env.critical_depth(), 2);
    assert_eq!(env.force_release_borrows(), 2);
    assert_eq!(env.critical_depth(), 0);
    // Idempotent: nothing left to release.
    assert_eq!(env.force_release_borrows(), 0);
    drop(env);
    assert!(tenant.quiesce().is_empty());
}

#[test]
fn eviction_works_for_guarded_tenants_too() {
    let mut cfg = TenantConfig::new(2);
    cfg.scheme = TenantScheme::Guarded;
    let tenant = Tenant::new(cfg);
    let thread = tenant.vm().attach_thread("teardown");
    let env = tenant.vm().env(&thread);
    let a = env.new_int_array_from(&[5; 16]).unwrap();
    let _elems = env.get_primitive_array_critical(&a).unwrap();
    tenant.evict();
    drop(env);
    let violations = tenant.quiesce();
    assert!(violations.is_empty(), "guarded teardown leaked: {violations:?}");
}

//! Fleet-level isolation: the tentpole acceptance invariant at test
//! scale. One noisy tenant with out-of-bounds traffic and injected
//! faults is degraded and then quarantined; every other tenant finishes
//! all admitted requests with zero contained faults, balanced pin
//! books, and zero stale table entries.

use mte_sim::inject::FaultPlan;
use server::{Request, Server, ServerConfig, TenantScheme, TrafficConfig};

fn noisy_fleet(scheme: TenantScheme) -> (Server, Vec<Request>) {
    let mut cfg = ServerConfig::with_tenants(3, 3);
    for (i, t) in cfg.tenants.iter_mut().enumerate() {
        t.scheme = scheme;
        if i == 0 {
            // The acceptance floor: >= 2000 ppm mixed injection on the
            // noisy tenant, on top of its out-of-bounds traffic.
            t.fault_plan = Some(FaultPlan::uniform(2_000));
        }
    }
    let traffic = TrafficConfig {
        per_tenant: 200,
        noisy_tenant: Some(0),
        ..TrafficConfig::default()
    };
    let stream = traffic.generate(3);
    (Server::new(cfg), stream)
}

#[test]
fn noisy_neighbor_is_contained_and_quarantined() {
    let (server, stream) = noisy_fleet(TenantScheme::LockFree);
    let summary = server.run(&stream);
    assert_eq!(summary.served + summary.shed, stream.len() as u64);

    // The noisy tenant took real faults, was contained, and ended up
    // shedding traffic behind the quarantine latch.
    let noisy = server.tenant(0).stats();
    assert!(
        noisy.contained_faults > 0,
        "noisy tenant saw no contained faults: {noisy:?}"
    );
    assert!(
        server.tenant(0).health().sheds_all(),
        "noisy tenant not quarantined: {:?}",
        server.tenant(0).health()
    );
    assert!(
        noisy.shed_quarantined > 0,
        "no traffic shed after quarantine: {noisy:?}"
    );

    // Every neighbor finished everything it admitted, fault-free.
    for id in [1, 2] {
        let t = server.tenant(id);
        let s = t.stats();
        assert_eq!(s.contained_faults, 0, "neighbor {id} took faults: {s:?}");
        assert_eq!(s.completed, s.admitted, "neighbor {id} lost requests: {s:?}");
        assert_eq!(t.failed(), 0, "neighbor {id} failed requests");
        assert_eq!(s.shed_quarantined, 0, "neighbor {id} was quarantined: {s:?}");
        assert!(!t.health().sheds_all(), "neighbor {id} sheds traffic");
    }

    // Replay requests never observe a conservation violation, and the
    // whole fleet — including the faulted tenant — quiesces clean.
    for t in server.tenants() {
        assert_eq!(t.replay_violations(), 0);
    }
    let violations = server.quiesce_all();
    assert!(violations.is_empty(), "fleet not sound: {violations:?}");
}

#[test]
fn isolation_holds_on_the_two_tier_backend() {
    let (server, stream) = noisy_fleet(TenantScheme::TwoTier);
    server.run(&stream);
    for id in [1, 2] {
        let s = server.tenant(id).stats();
        assert_eq!(s.contained_faults, 0, "neighbor {id}: {s:?}");
        assert_eq!(s.completed, s.admitted, "neighbor {id}: {s:?}");
    }
    assert!(server.tenant(0).stats().contained_faults > 0);
    let violations = server.quiesce_all();
    assert!(violations.is_empty(), "fleet not sound: {violations:?}");
}

#[test]
fn rollup_reports_every_tenant_with_schema_version() {
    let (server, stream) = noisy_fleet(TenantScheme::LockFree);
    server.run(&stream);
    let rollup = server.rollup();
    assert_eq!(rollup.tenants().count(), 3);
    let (admitted, completed, shed, contained) = rollup.totals();
    assert!(admitted > 0 && completed > 0 && shed > 0 && contained > 0);
    let json = rollup.snapshot_json().to_pretty_string();
    assert!(json.contains("\"schema_version\""), "{json}");
    assert!(json.contains("\"fleet_rollup\""), "{json}");
    assert!(json.contains("\"quarantined\""), "{json}");
}

#[test]
fn guarded_tenants_detect_instead_of_contain() {
    // Guarded-copy ablation: the noisy tenant's out-of-bounds writes
    // are caught at release (CheckJNI) rather than contained at the
    // faulting access; neighbors still finish clean.
    let mut cfg = ServerConfig::with_tenants(2, 2);
    for t in &mut cfg.tenants {
        t.scheme = TenantScheme::Guarded;
    }
    let traffic = TrafficConfig {
        per_tenant: 150,
        noisy_tenant: Some(0),
        ..TrafficConfig::default()
    };
    let stream = traffic.generate(2);
    let server = Server::new(cfg);
    server.run(&stream);
    let neighbor = server.tenant(1).stats();
    assert_eq!(neighbor.contained_faults, 0);
    assert_eq!(neighbor.completed, neighbor.admitted);
    let violations = server.quiesce_all();
    assert!(violations.is_empty(), "fleet not sound: {violations:?}");
}

#[test]
fn queue_bound_sheds_under_a_starved_pool() {
    // One worker, capacity-1 queues: depth can never exceed the bound,
    // and the run still drains the whole stream.
    let mut cfg = ServerConfig::with_tenants(2, 1);
    for t in &mut cfg.tenants {
        t.queue_capacity = 1;
    }
    let traffic = TrafficConfig {
        per_tenant: 40,
        kernel_ppm: 0,
        replay_ppm: 0,
        ..TrafficConfig::default()
    };
    let stream = traffic.generate(2);
    let server = Server::new(cfg);
    let summary = server.run(&stream);
    assert_eq!(summary.served + summary.shed, 80);
    // With a single worker there is never queue contention, so nothing
    // sheds — the bound is a ceiling, not a throttle.
    assert_eq!(summary.shed, 0);
    assert!(server.quiesce_all().is_empty());
}

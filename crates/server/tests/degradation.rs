//! Satellite regression: N threads exhausting the irg tag pool all
//! fall back to guarded-copy single-acquire degradation, and the
//! degradation never poisons tenant health past `Degraded`.

use mte_sim::inject::FaultPlan;
use server::{Health, Server, ServerConfig, TrafficConfig};

#[test]
fn concurrent_tag_exhaustion_degrades_but_never_quarantines() {
    let mut cfg = ServerConfig::with_tenants(1, 4);
    // Every irg draw returns the excluded zero tag: all critical
    // acquires on this tenant degrade to the guarded-copy fallback.
    cfg.tenants[0].fault_plan = Some(FaultPlan {
        irg_exhaust_ppm: 1_000_000,
        ..FaultPlan::default()
    });
    let traffic = TrafficConfig {
        per_tenant: 120,
        kernel_ppm: 0,
        replay_ppm: 0,
        ..TrafficConfig::default()
    };
    let stream = traffic.generate(1);
    let server = Server::new(cfg);
    let summary = server.run(&stream);
    assert_eq!(summary.served, 120, "degraded tenant must keep serving");

    let t = server.tenant(0);
    let s = t.stats();
    // The fallback fired — a lot — and every request still completed.
    assert!(s.degraded_exhaust > 0, "no TagExhausted degradations: {s:?}");
    assert_eq!(s.completed, s.admitted, "degradation dropped requests: {s:?}");
    assert_eq!(t.failed(), 0);
    // Tag exhaustion is correct (slower) operation, not a fault: zero
    // contained faults, health capped at Degraded, nothing shed.
    assert_eq!(s.contained_faults, 0, "exhaustion mis-counted as a fault");
    assert_eq!(t.health(), Health::Degraded, "health must cap at Degraded");
    assert_eq!(s.shed_quarantined, 0);

    // Fallback shadows all returned; funnel and pin books balance.
    let violations = t.quiesce();
    assert!(violations.is_empty(), "degraded tenant leaked: {violations:?}");
}

#[test]
fn partial_exhaustion_under_threads_stays_sound() {
    // A 30% exhaustion rate mixes degraded and tagged acquires across
    // 4 worker threads on the same tenant VM — the racy path the
    // single-acquire fallback has to survive.
    let mut cfg = ServerConfig::with_tenants(1, 4);
    cfg.tenants[0].fault_plan = Some(FaultPlan {
        irg_exhaust_ppm: 300_000,
        ..FaultPlan::default()
    });
    let traffic = TrafficConfig {
        per_tenant: 160,
        kernel_ppm: 0,
        replay_ppm: 0,
        ..TrafficConfig::default()
    };
    let stream = traffic.generate(1);
    let server = Server::new(cfg);
    server.run(&stream);
    let t = server.tenant(0);
    let s = t.stats();
    assert!(s.degraded_exhaust > 0, "{s:?}");
    assert_eq!(s.completed, s.admitted, "{s:?}");
    assert!(t.health() <= Health::Degraded, "health: {:?}", t.health());
    let violations = t.quiesce();
    assert!(violations.is_empty(), "leaked: {violations:?}");
}

//! Property-based tests for the heap substrate.

use art_heap::{BlockAllocator, Heap, HeapConfig, JavaThread};
use mte_sim::MemoryConfig;
use proptest::prelude::*;

fn small_heap() -> Heap {
    Heap::new(HeapConfig {
        memory: MemoryConfig {
            base: 0x7a00_0000_0000,
            size: 4 << 20,
        },
        ..HeapConfig::default()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any sequence of allocations yields pairwise-disjoint, aligned
    /// blocks; freeing everything restores full capacity.
    #[test]
    fn allocator_blocks_never_overlap(
        sizes in prop::collection::vec(1usize..2048, 1..64),
        align_16 in any::<bool>(),
    ) {
        let align = if align_16 { 16 } else { 8 };
        let arena = BlockAllocator::new(0x10000, 1 << 20, align);
        let mut live: Vec<(u64, usize)> = Vec::new();
        for &s in &sizes {
            let (addr, len) = arena.alloc(s).expect("arena is large enough");
            prop_assert_eq!(addr % align as u64, 0);
            prop_assert!(len >= s);
            for &(other, olen) in &live {
                let disjoint = addr + len as u64 <= other || other + olen as u64 <= addr;
                prop_assert!(disjoint, "{addr:#x}+{len} overlaps {other:#x}+{olen}");
            }
            live.push((addr, len));
        }
        for (addr, len) in live {
            arena.free(addr, len);
        }
        prop_assert_eq!(arena.bytes_in_use(), 0);
        // The arena coalesced back into one block.
        let (big, big_len) = arena.alloc(1 << 20).expect("full capacity restored");
        prop_assert_eq!(big, 0x10000);
        prop_assert_eq!(big_len, 1 << 20);
    }

    /// Interleaved alloc/free driven by a random program keeps the
    /// in-use accounting exact.
    #[test]
    fn allocator_accounting_is_exact(ops in prop::collection::vec((any::<bool>(), 1usize..512), 1..128)) {
        let arena = BlockAllocator::new(0, 1 << 20, 16);
        let mut live: Vec<(u64, usize)> = Vec::new();
        let mut expected = 0u64;
        for (is_alloc, n) in ops {
            if is_alloc || live.is_empty() {
                if let Some((addr, len)) = arena.alloc(n) {
                    live.push((addr, len));
                    expected += len as u64;
                }
            } else {
                let (addr, len) = live.swap_remove(n % live.len());
                arena.free(addr, len);
                expected -= len as u64;
            }
            prop_assert_eq!(arena.bytes_in_use(), expected);
        }
    }

    /// Java strings round-trip arbitrary Rust strings exactly.
    #[test]
    fn string_round_trips_arbitrary_text(s in ".{0,200}") {
        let heap = small_heap();
        let js = heap.alloc_string(&s).unwrap();
        prop_assert_eq!(heap.read_string(&js).unwrap(), s.clone());
        prop_assert_eq!(js.len(), s.encode_utf16().count());
    }

    /// Modified UTF-8 encode/decode round-trips arbitrary UTF-16 unit
    /// sequences, including unpaired surrogates.
    #[test]
    fn modified_utf8_round_trips_raw_units(units in prop::collection::vec(any::<u16>(), 0..120)) {
        let encoded = art_heap::encode_modified_utf8(&units);
        let decoded = art_heap::decode_modified_utf8(&encoded).unwrap();
        prop_assert_eq!(decoded, units);
        prop_assert!(!encoded.contains(&0), "never an embedded NUL");
    }

    /// Managed element accessors store and load arbitrary values exactly,
    /// and only within bounds.
    #[test]
    fn managed_accessors_are_exact_and_bounded(
        values in prop::collection::vec(any::<i32>(), 1..64),
        probe in any::<usize>(),
    ) {
        let heap = small_heap();
        let thread = JavaThread::new("prop");
        let a = heap.alloc_int_array_from(&values).unwrap();
        prop_assert_eq!(heap.int_array_as_vec(&thread, &a).unwrap(), values.clone());
        let result = heap.int_at(&thread, &a, probe);
        prop_assert_eq!(result.is_ok(), probe < values.len());
    }

    /// Dropping any subset of handles and sweeping collects exactly that
    /// subset.
    #[test]
    fn sweep_collects_exactly_the_dropped_handles(keep_mask in prop::collection::vec(any::<bool>(), 1..40)) {
        let heap = small_heap();
        let mut kept = Vec::new();
        let mut dropped = 0usize;
        for &keep in &keep_mask {
            let a = heap.alloc_int_array(8).unwrap();
            if keep {
                kept.push(a);
            } else {
                dropped += 1;
            }
        }
        let stats = heap.sweep();
        prop_assert_eq!(stats.swept, dropped);
        prop_assert_eq!(heap.live_count(), kept.len());
    }
}

//! The pin ledger: the heap half of the JNI pinning contract.
//!
//! `GetPrimitiveArrayCritical` and friends promise native code a stable
//! pointer until the matching `Release*`. Real ART honours that promise
//! by pinning the object against the moving collector; before this module
//! existed, [`Heap::sweep`] would happily reclaim a natively-borrowed
//! object the moment its last Java handle died — leaving the protection
//! scheme's tag-table entry keyed at a recyclable address (the stale-tag
//! use-after-free class the paper's timely tag release is built to kill).
//!
//! The ledger keeps one entry per pinned object: a pin count plus a
//! *strong* [`LiveToken`] reference. The strong reference makes the fix
//! airtight at the liveness level (a pinned object can never look dead),
//! and the explicit ledger check in [`Heap::sweep`] / the compacting
//! collector makes the contract auditable: sweep never reclaims, and
//! compaction never moves, a pinned object.
//!
//! [`Heap::sweep`]: crate::Heap::sweep

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::object::LiveToken;

struct PinEntry {
    count: u32,
    token: Arc<LiveToken>,
}

/// Per-heap registry of natively-borrowed objects.
#[derive(Default)]
pub(crate) struct PinLedger {
    entries: Mutex<HashMap<u64, PinEntry>>,
    pins_total: AtomicU64,
    unpins_total: AtomicU64,
}

impl PinLedger {
    /// Pins the object behind `token`, returning the new pin count.
    ///
    /// The caller must hold the heap's world gate (shared) so a pin can
    /// never race the compacting collector relocating the same object.
    pub(crate) fn pin(&self, token: &Arc<LiveToken>) -> u32 {
        let mut entries = self.entries.lock();
        let entry = entries.entry(token.addr()).or_insert_with(|| PinEntry {
            count: 0,
            token: Arc::clone(token),
        });
        entry.count += 1;
        self.pins_total.fetch_add(1, Ordering::Relaxed);
        entry.count
    }

    /// Drops one pin from the object at `addr`. Returns the remaining pin
    /// count, or `None` when the address was not pinned (a tolerated
    /// caller error, like `Release*` without a matching `Get*`).
    pub(crate) fn unpin(&self, addr: u64) -> Option<u32> {
        let mut entries = self.entries.lock();
        let entry = entries.get_mut(&addr)?;
        entry.count -= 1;
        let remaining = entry.count;
        if remaining == 0 {
            entries.remove(&addr);
        }
        self.unpins_total.fetch_add(1, Ordering::Relaxed);
        Some(remaining)
    }

    /// Whether the object at `addr` is currently pinned.
    pub(crate) fn is_pinned(&self, addr: u64) -> bool {
        self.entries.lock().contains_key(&addr)
    }

    /// Number of distinct pinned objects.
    pub(crate) fn pinned_objects(&self) -> usize {
        self.entries.lock().len()
    }

    /// The liveness token of the pinned object at `addr`, if any — this
    /// is how a `Release*` can resurrect a handle after native code
    /// outlived the last Java reference.
    pub(crate) fn token(&self, addr: u64) -> Option<Arc<LiveToken>> {
        self.entries.lock().get(&addr).map(|e| Arc::clone(&e.token))
    }

    /// Cumulative pins ever taken.
    pub(crate) fn pins_total(&self) -> u64 {
        self.pins_total.load(Ordering::Relaxed)
    }

    /// Cumulative pins ever dropped.
    pub(crate) fn unpins_total(&self) -> u64 {
        self.unpins_total.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::ObjKind;
    use crate::types::PrimitiveType;

    fn token(addr: u64) -> Arc<LiveToken> {
        Arc::new(LiveToken::new(addr, ObjKind::Array(PrimitiveType::Int), 4))
    }

    #[test]
    fn pin_counts_nest() {
        let ledger = PinLedger::default();
        let t = token(0x1000);
        assert_eq!(ledger.pin(&t), 1);
        assert_eq!(ledger.pin(&t), 2);
        assert!(ledger.is_pinned(0x1000));
        assert_eq!(ledger.unpin(0x1000), Some(1));
        assert!(ledger.is_pinned(0x1000), "still borrowed once");
        assert_eq!(ledger.unpin(0x1000), Some(0));
        assert!(!ledger.is_pinned(0x1000));
        assert_eq!(ledger.pins_total(), 2);
        assert_eq!(ledger.unpins_total(), 2);
    }

    #[test]
    fn unpin_of_unpinned_address_is_tolerated() {
        let ledger = PinLedger::default();
        assert_eq!(ledger.unpin(0xdead), None);
        assert_eq!(ledger.unpins_total(), 0);
    }

    #[test]
    fn ledger_holds_the_object_live() {
        let ledger = PinLedger::default();
        let t = token(0x2000);
        let weak = Arc::downgrade(&t);
        ledger.pin(&t);
        drop(t); // last "Java handle" dies
        assert!(weak.upgrade().is_some(), "the pin keeps the token alive");
        let resurrected = ledger.token(0x2000).expect("pinned");
        assert_eq!(resurrected.addr(), 0x2000);
        ledger.unpin(0x2000);
        drop(resurrected);
        assert!(weak.upgrade().is_none(), "unpinned and unreferenced: dead");
    }

    #[test]
    fn pinned_objects_counts_distinct_addresses() {
        let ledger = PinLedger::default();
        let a = token(0x1000);
        let b = token(0x2000);
        ledger.pin(&a);
        ledger.pin(&a);
        ledger.pin(&b);
        assert_eq!(ledger.pinned_objects(), 2);
    }
}

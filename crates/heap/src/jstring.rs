//! Java string encodings: UTF-16 code units and JNI *modified UTF-8*.
//!
//! `GetStringChars` exposes the heap's UTF-16 data directly;
//! `GetStringUTFChars` exposes a modified-UTF-8 transcoding. Modified
//! UTF-8 differs from standard UTF-8 in two ways (JNI spec §Modified
//! UTF-8 Strings):
//!
//! * `U+0000` is encoded as the two-byte sequence `0xC0 0x80` so the data
//!   never contains an embedded NUL, and
//! * supplementary characters are encoded as *two* three-byte sequences,
//!   one per UTF-16 surrogate (CESU-8 style), never as four-byte UTF-8.

use std::fmt;

/// Error returned by [`decode_modified_utf8`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Utf8Error {
    /// Byte offset of the offending sequence.
    pub offset: usize,
}

impl fmt::Display for Utf8Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid modified UTF-8 at byte {}", self.offset)
    }
}

impl std::error::Error for Utf8Error {}

/// Converts a Rust string to the UTF-16 code units a Java `String` stores.
pub fn utf16_units(s: &str) -> Vec<u16> {
    s.encode_utf16().collect()
}

/// Encodes UTF-16 code units as JNI modified UTF-8.
///
/// Unpaired surrogates are encoded as their individual three-byte
/// sequences, exactly as HotSpot/ART do (Java strings may contain them).
///
/// ```
/// use art_heap::encode_modified_utf8;
/// // U+0000 gets the overlong two-byte form.
/// assert_eq!(encode_modified_utf8(&[0x0000]), vec![0xC0, 0x80]);
/// // ASCII stays one byte.
/// assert_eq!(encode_modified_utf8(&[0x41]), vec![0x41]);
/// ```
pub fn encode_modified_utf8(units: &[u16]) -> Vec<u8> {
    let mut out = Vec::with_capacity(units.len());
    for &u in units {
        match u {
            0x0000 => out.extend_from_slice(&[0xC0, 0x80]),
            0x0001..=0x007F => out.push(u as u8),
            0x0080..=0x07FF => {
                out.push(0xC0 | (u >> 6) as u8);
                out.push(0x80 | (u & 0x3F) as u8);
            }
            _ => {
                out.push(0xE0 | (u >> 12) as u8);
                out.push(0x80 | ((u >> 6) & 0x3F) as u8);
                out.push(0x80 | (u & 0x3F) as u8);
            }
        }
    }
    out
}

/// Decodes JNI modified UTF-8 back to UTF-16 code units.
///
/// # Errors
///
/// Returns [`Utf8Error`] with the offset of the first byte of any sequence
/// that is not valid modified UTF-8 (including plain-UTF-8 four-byte
/// sequences, which modified UTF-8 forbids).
pub fn decode_modified_utf8(bytes: &[u8]) -> Result<Vec<u16>, Utf8Error> {
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        let b0 = bytes[i];
        let err = Utf8Error { offset: i };
        match b0 {
            // One byte: 0x01..=0x7F. A raw 0x00 is legal input for ART's
            // decoder but we treat it as the terminator convention and
            // reject it to catch buffer-length bugs.
            0x01..=0x7F => {
                out.push(u16::from(b0));
                i += 1;
            }
            0xC0..=0xDF => {
                let b1 = *bytes.get(i + 1).ok_or(err)?;
                if b1 & 0xC0 != 0x80 {
                    return Err(err);
                }
                out.push((u16::from(b0 & 0x1F) << 6) | u16::from(b1 & 0x3F));
                i += 2;
            }
            0xE0..=0xEF => {
                let b1 = *bytes.get(i + 1).ok_or(err)?;
                let b2 = *bytes.get(i + 2).ok_or(err)?;
                if b1 & 0xC0 != 0x80 || b2 & 0xC0 != 0x80 {
                    return Err(err);
                }
                out.push(
                    (u16::from(b0 & 0x0F) << 12)
                        | (u16::from(b1 & 0x3F) << 6)
                        | u16::from(b2 & 0x3F),
                );
                i += 3;
            }
            _ => return Err(err),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(s: &str) {
        let units = utf16_units(s);
        let encoded = encode_modified_utf8(&units);
        let decoded = decode_modified_utf8(&encoded).unwrap();
        assert_eq!(decoded, units, "round trip for {s:?}");
        assert_eq!(String::from_utf16(&decoded).unwrap(), s);
    }

    #[test]
    fn ascii_round_trips_identity() {
        let s = "Hello, JNI!";
        assert_eq!(encode_modified_utf8(&utf16_units(s)), s.as_bytes());
        round_trip(s);
    }

    #[test]
    fn bmp_characters_round_trip() {
        round_trip("héllo wörld");
        round_trip("日本語のテキスト");
        round_trip("Ω≈ç√∫");
    }

    #[test]
    fn supplementary_characters_use_surrogate_pairs() {
        // U+1F600 GRINNING FACE: UTF-16 D83D DE00 → two 3-byte sequences.
        let units = utf16_units("😀");
        assert_eq!(units.len(), 2);
        let encoded = encode_modified_utf8(&units);
        assert_eq!(encoded.len(), 6, "CESU-8 style, not 4-byte UTF-8");
        assert_ne!(encoded, "😀".as_bytes(), "differs from standard UTF-8");
        round_trip("😀🚀");
    }

    #[test]
    fn nul_is_overlong_encoded() {
        let encoded = encode_modified_utf8(&[0x41, 0x0000, 0x42]);
        assert_eq!(encoded, vec![0x41, 0xC0, 0x80, 0x42]);
        assert!(!encoded.contains(&0), "no embedded NUL bytes");
        assert_eq!(decode_modified_utf8(&encoded).unwrap(), vec![0x41, 0, 0x42]);
    }

    #[test]
    fn empty_string() {
        assert!(encode_modified_utf8(&[]).is_empty());
        assert!(decode_modified_utf8(&[]).unwrap().is_empty());
    }

    #[test]
    fn decode_rejects_truncated_sequences() {
        assert_eq!(decode_modified_utf8(&[0xC0]), Err(Utf8Error { offset: 0 }));
        assert_eq!(decode_modified_utf8(&[0x41, 0xE0, 0x80]), Err(Utf8Error { offset: 1 }));
    }

    #[test]
    fn decode_rejects_bad_continuations() {
        assert!(decode_modified_utf8(&[0xC2, 0x41]).is_err());
        assert!(decode_modified_utf8(&[0xE0, 0x41, 0x80]).is_err());
    }

    #[test]
    fn decode_rejects_four_byte_utf8() {
        // Standard UTF-8 for U+1F600 — forbidden in modified UTF-8.
        assert!(decode_modified_utf8("😀".as_bytes()).is_err());
    }

    #[test]
    fn decode_rejects_raw_nul() {
        assert!(decode_modified_utf8(&[0x00]).is_err());
    }

    #[test]
    fn unpaired_surrogate_round_trips() {
        let units = vec![0xD800u16];
        let encoded = encode_modified_utf8(&units);
        assert_eq!(encoded.len(), 3);
        assert_eq!(decode_modified_utf8(&encoded).unwrap(), units);
    }
}

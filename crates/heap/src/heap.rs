//! The simulated Java heap.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::time::Duration;

use parking_lot::Mutex;

use mte_sim::{
    MemoryConfig, MteThread, NativeAllocator, TagCheckFault, Tag, TaggedMemory, TaggedPtr, GRANULE,
};
// The facade mutex participates in the deterministic stress scheduler;
// required for any lock held across a schedule point (the safepoint
// hook yields), or a blocked waiter would stall the whole schedule.
use mte_sim::sync::Mutex as SchedMutex;

use crate::block_alloc::BlockAllocator;
use crate::error::HeapError;
use crate::jstring::utf16_units;
use crate::object::{ArrayRef, LiveToken, ObjKind, ObjectRef, StringRef};
use crate::pin::PinLedger;
use crate::thread::JavaThread;
use crate::world::WorldGate;
use crate::types::PrimitiveType;
use crate::Result;

/// Callback invoked for every relocated object during compaction, with
/// the old and new *payload* addresses — the keys a protection scheme's
/// tag table uses.
pub type RelocationHook = Arc<dyn Fn(u64, u64) + Send + Sync>;

/// Which GC safepoint a [`SafepointHook`] invocation marks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SafepointPhase {
    /// A sweep is about to reclaim its dead, unpinned candidates.
    Sweep,
    /// The compacting collector has just taken its exclusive world
    /// hold and is about to move every unpinned object; no mutator can
    /// pin until the hold ends.
    CompactBegin,
    /// The compactor has finished moving and rehoming, and is about to
    /// release its exclusive world hold.
    CompactEnd,
}

/// One GC safepoint notification, delivered to the [`SafepointHook`]
/// *before* the collector acts on the candidates (and, for
/// [`SafepointPhase::CompactEnd`], after it is done).
#[derive(Debug)]
pub struct Safepoint<'a> {
    /// Which safepoint this is.
    pub phase: SafepointPhase,
    /// `(begin, end)` payload address ranges of the candidate objects
    /// the collector is about to reclaim (sweep: dead and unpinned) or
    /// may move (compaction begin: every unpinned object). Empty at
    /// [`SafepointPhase::CompactEnd`].
    pub candidates: &'a [(u64, u64)],
}

/// Callback invoked at every GC safepoint so a protection scheme can
/// redeem or retire bookkeeping it keeps outside the pin ledger (e.g.
/// parked borrow-stash credits) before the collector inspects
/// liveness. Runs under the collector's world hold: shared for a
/// sweep, exclusive for a compaction.
pub type SafepointHook = Arc<dyn Fn(&Safepoint<'_>) + Send + Sync>;

/// Size of the simulated object header.
///
/// Real ART uses 8-byte headers for arrays (class pointer + monitor) plus a
/// 4-byte length; we round the whole header to 16 bytes so the payload of a
/// 16-byte aligned object starts on a granule boundary, which keeps header
/// tagging and payload tagging independent.
pub const HEADER_SIZE: usize = 16;

/// Heap construction parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HeapConfig {
    /// Backing simulated memory geometry.
    pub memory: MemoryConfig,
    /// Object alignment: 8 (stock ART) or 16 (MTE4JNI, paper §4.1).
    pub alignment: usize,
    /// Whether heap pages are mapped with `PROT_MTE`.
    pub prot_mte: bool,
    /// Whether every object is tagged with a random tag at *allocation*
    /// time (the HWASan/HeMate-style policy from the paper's related
    /// work, §6.2) rather than at JNI acquisition. Requires `prot_mte`.
    pub tag_on_alloc: bool,
}

impl HeapConfig {
    /// The paper's configuration: 16-byte alignment, `PROT_MTE` heap,
    /// tags assigned by the JNI interfaces (not at allocation).
    pub fn mte4jni() -> HeapConfig {
        HeapConfig {
            memory: MemoryConfig::default(),
            alignment: 16,
            prot_mte: true,
            tag_on_alloc: false,
        }
    }

    /// Stock ART: 8-byte alignment, no `PROT_MTE`.
    pub fn stock_art() -> HeapConfig {
        HeapConfig {
            memory: MemoryConfig::default(),
            alignment: 8,
            prot_mte: false,
            tag_on_alloc: false,
        }
    }

    /// Hazard configuration for the §4.1 ablation: `PROT_MTE` heap but
    /// stock 8-byte alignment, so two objects can share a tag granule.
    pub fn misaligned_mte() -> HeapConfig {
        HeapConfig {
            memory: MemoryConfig::default(),
            alignment: 8,
            prot_mte: true,
            tag_on_alloc: false,
        }
    }

    /// HWASan/HeMate-style policy: every object receives a random tag at
    /// allocation time (related-work comparison point, §6.2).
    pub fn alloc_tagged() -> HeapConfig {
        HeapConfig {
            memory: MemoryConfig::default(),
            alignment: 16,
            prot_mte: true,
            tag_on_alloc: true,
        }
    }
}

impl Default for HeapConfig {
    fn default() -> Self {
        HeapConfig::mte4jni()
    }
}

#[derive(Debug)]
struct ObjectMeta {
    block_len: usize,
    byte_len: usize,
    live: Weak<LiveToken>,
}

struct HeapInner {
    memory: Arc<TaggedMemory>,
    blocks: BlockAllocator,
    native: NativeAllocator,
    config: HeapConfig,
    objects: Mutex<HashMap<u64, ObjectMeta>>,
    /// Natively-borrowed objects: never swept, never moved.
    pins: PinLedger,
    /// The stop-the-world gate for the compacting collector: object
    /// relocation holds it exclusively; payload accessors and pin
    /// insertion hold it shared (recursively — an accessor may nest
    /// inside another gated section on the same thread).
    world: WorldGate,
    /// Notified for each moved object so protection schemes can rehome
    /// tag-table entries keyed by payload address.
    relocation_hook: Mutex<Option<RelocationHook>>,
    /// Notified at GC safepoints (sweep, compaction begin/end) before
    /// the collector acts, so protection schemes can flush parked
    /// borrow credits and purge entries for the collector's candidates.
    safepoint_hook: Mutex<Option<SafepointHook>>,
    /// Serializes sweeps. A sweep snapshots its dead candidates, drops
    /// the objects lock across the safepoint hook, and only then
    /// reclaims — so the snapshot-to-purge window must be atomic with
    /// respect to reclamation. Compaction (the only other reclaimer) is
    /// excluded by the world gate; this lock excludes the only
    /// remaining hazard, a concurrent sweep. A scheduler-visible
    /// facade mutex, because it is held across the safepoint hook's
    /// schedule points.
    sweep_serial: SchedMutex<()>,
    allocated_total: AtomicU64,
    swept_total: AtomicU64,
    sweeps: AtomicU64,
    compactions: AtomicU64,
    moved_objects_total: AtomicU64,
    moved_bytes_total: AtomicU64,
    /// xorshift state for allocation-time tag generation.
    tag_rng: AtomicU64,
}

/// A simulated ART-style Java heap.
///
/// Cloning a `Heap` clones a reference to the same heap (it is an
/// `Arc`-backed handle, like `Runtime::Current()->GetHeap()` in ART).
///
/// # Example
///
/// ```
/// use art_heap::{Heap, HeapConfig, JavaThread};
///
/// # fn main() -> art_heap::Result<()> {
/// let heap = Heap::new(HeapConfig::default());
/// let thread = JavaThread::new("main");
/// let array = heap.alloc_int_array_from(&[1, 2, 3])?;
/// assert_eq!(heap.int_at(&thread, &array, 2)?, 3);
/// heap.set_int_at(&thread, &array, 0, 42)?;
/// assert_eq!(heap.int_array_as_vec(&thread, &array)?, vec![42, 2, 3]);
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct Heap {
    inner: Arc<HeapInner>,
}

impl Heap {
    /// Creates a heap. Three quarters of the simulated memory become the
    /// Java heap; the last quarter becomes the (never `PROT_MTE`) native
    /// arena used for guarded-copy shadow buffers.
    ///
    /// # Panics
    ///
    /// Panics if `alignment` is not 8 or 16.
    pub fn new(config: HeapConfig) -> Heap {
        assert!(
            config.alignment == 8 || config.alignment == 16,
            "object alignment must be 8 or 16"
        );
        assert!(
            !config.tag_on_alloc || config.prot_mte,
            "allocation-time tagging requires a PROT_MTE heap"
        );
        let memory = TaggedMemory::new(config.memory);
        let heap_len = (memory.size() / 4 * 3) & !(mte_sim::PAGE_SIZE - 1);
        let heap_start = memory.base();
        let native_start = heap_start + heap_len as u64;
        let native_len = memory.size() - heap_len;
        if config.prot_mte {
            memory
                .mprotect_mte(heap_start, heap_len, true)
                .expect("heap range lies inside the memory");
        }
        Heap {
            inner: Arc::new(HeapInner {
                blocks: BlockAllocator::new(heap_start, heap_len, config.alignment),
                native: NativeAllocator::new(Arc::clone(&memory), native_start, native_len),
                memory,
                config,
                objects: Mutex::new(HashMap::new()),
                pins: PinLedger::default(),
                world: WorldGate::default(),
                relocation_hook: Mutex::new(None),
                safepoint_hook: Mutex::new(None),
                sweep_serial: SchedMutex::new(()),
                allocated_total: AtomicU64::new(0),
                swept_total: AtomicU64::new(0),
                sweeps: AtomicU64::new(0),
                compactions: AtomicU64::new(0),
                moved_objects_total: AtomicU64::new(0),
                moved_bytes_total: AtomicU64::new(0),
                tag_rng: AtomicU64::new(0x2545_F491_4F6C_DD1D),
            }),
        }
    }

    /// The backing simulated memory.
    pub fn memory(&self) -> &Arc<TaggedMemory> {
        &self.inner.memory
    }

    /// The simulated native (`malloc`) allocator, used by the guarded-copy
    /// baseline for its shadow buffers.
    pub fn native_alloc(&self) -> &NativeAllocator {
        &self.inner.native
    }

    /// The active configuration.
    pub fn config(&self) -> HeapConfig {
        self.inner.config
    }

    // ------------------------------------------------------------------
    // Allocation
    // ------------------------------------------------------------------

    fn alloc_object(&self, kind: ObjKind, len: usize) -> Result<Arc<LiveToken>> {
        let byte_len = len * kind.element_type().size();
        let total = HEADER_SIZE + byte_len;
        // Block reservation and object registration happen under one
        // objects-lock hold: the compacting collector rebuilds the
        // allocator's free list from the objects map, so a block must
        // never exist in one without the other.
        let _gate = self.inner.world.read_recursive();
        let mut objects = self.inner.objects.lock();
        let (addr, block_len) = self
            .inner
            .blocks
            .alloc(total)
            .ok_or(HeapError::OutOfMemory { requested: total })?;
        let mem = &self.inner.memory;
        // Header: class word, monitor word, length, padding.
        let header = TaggedPtr::from_addr(addr);
        let class_word = match kind {
            ObjKind::Array(t) => 0x1000 | t.descriptor() as u32,
            ObjKind::String => 0x2000,
        };
        let mut hdr = [0u8; HEADER_SIZE];
        hdr[0..4].copy_from_slice(&class_word.to_le_bytes());
        hdr[8..12].copy_from_slice(&(len as u32).to_le_bytes());
        mem.write_bytes_unchecked(header, &hdr)?;
        // Java zero-initializes payloads.
        mem.fill_unchecked(header.wrapping_add(HEADER_SIZE as u64), byte_len, 0)?;
        if self.inner.config.tag_on_alloc {
            let tag = self.next_alloc_tag();
            mem.set_tag_range(header, addr + block_len as u64, tag)?;
        }
        let token = Arc::new(LiveToken::new(addr, kind, len));
        objects.insert(
            addr,
            ObjectMeta {
                block_len,
                byte_len,
                live: Arc::downgrade(&token),
            },
        );
        drop(objects);
        self.inner.allocated_total.fetch_add(1, Ordering::Relaxed);
        Ok(token)
    }

    /// Generates a non-zero allocation tag (xorshift over the shared
    /// state; tag 0 is reserved for untagged memory).
    fn next_alloc_tag(&self) -> Tag {
        fn xorshift(mut x: u64) -> u64 {
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            x
        }
        loop {
            // One atomic step: a separate load/store pair let racing
            // allocators observe the same state and walk away with
            // identical "random" tags.
            let prev = self
                .inner
                .tag_rng
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |x| Some(xorshift(x)))
                .expect("xorshift update is infallible");
            let x = xorshift(prev);
            let tag = Tag::from_low_bits((x.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 60) as u8);
            if !tag.is_untagged() {
                return tag;
            }
        }
    }

    /// Allocates a zero-filled primitive array.
    ///
    /// # Errors
    ///
    /// [`HeapError::OutOfMemory`] when the heap is exhausted.
    pub fn alloc_array(&self, ty: PrimitiveType, len: usize) -> Result<ArrayRef> {
        Ok(ArrayRef {
            token: self.alloc_object(ObjKind::Array(ty), len)?,
        })
    }

    /// Allocates a `java.lang.String` holding `s`.
    ///
    /// # Errors
    ///
    /// [`HeapError::OutOfMemory`] when the heap is exhausted.
    pub fn alloc_string(&self, s: &str) -> Result<StringRef> {
        self.alloc_string_from_units(&utf16_units(s))
    }

    /// Allocates a `java.lang.String` from raw UTF-16 code units — Java
    /// strings may hold unpaired surrogates that no Rust `&str` can.
    ///
    /// # Errors
    ///
    /// [`HeapError::OutOfMemory`] when the heap is exhausted.
    pub fn alloc_string_from_units(&self, units: &[u16]) -> Result<StringRef> {
        let token = self.alloc_object(ObjKind::String, units.len())?;
        let mut bytes = Vec::with_capacity(units.len() * 2);
        for u in units {
            bytes.extend_from_slice(&u.to_le_bytes());
        }
        let _gate = self.inner.world.read_recursive();
        self.inner.memory.write_bytes_unchecked(
            TaggedPtr::from_addr(token.addr() + HEADER_SIZE as u64),
            &bytes,
        )?;
        Ok(StringRef { token })
    }

    /// Reads a string object back into a Rust `String` (managed-side read,
    /// like `String.toString()` inside the JVM).
    ///
    /// # Errors
    ///
    /// Propagates simulated memory errors; lossily maps unpaired
    /// surrogates like `String.valueOf` would not — this returns an error
    /// instead.
    pub fn read_string(&self, s: &StringRef) -> Result<String> {
        let mut bytes = vec![0u8; s.byte_len()];
        let _gate = self.inner.world.read_recursive();
        self.inner
            .memory
            .read_bytes_unchecked(TaggedPtr::from_addr(s.data_addr()), &mut bytes)?;
        let units: Vec<u16> = bytes
            .chunks_exact(2)
            .map(|c| u16::from_le_bytes([c[0], c[1]]))
            .collect();
        String::from_utf16(&units).map_err(|_| HeapError::InvalidUtf8 { offset: 0 })
    }

    // ------------------------------------------------------------------
    // Managed (JVM-side, bounds-checked) element access
    // ------------------------------------------------------------------

    fn elem_ptr(&self, a: &ArrayRef, expected: PrimitiveType, index: usize) -> Result<TaggedPtr> {
        let actual = a.element_type();
        if actual != expected {
            return Err(HeapError::TypeMismatch { expected, actual });
        }
        if index >= a.len() {
            return Err(HeapError::IndexOutOfBounds {
                index,
                length: a.len(),
            });
        }
        Ok(TaggedPtr::from_addr(
            a.data_addr() + (index * expected.size()) as u64,
        ))
    }

    /// Raw pointer to an object's payload — what the JNI layer tags and
    /// hands to native code. Untagged.
    pub fn data_ptr(&self, obj: &ObjectRef) -> TaggedPtr {
        TaggedPtr::from_addr(obj.data_addr())
    }

    // ------------------------------------------------------------------
    // Runtime-internal bulk access (no tag checks; TCO-set equivalent)
    // ------------------------------------------------------------------

    /// Reads an object's entire payload without tag checks (runtime
    /// internal, e.g. guarded copy's copy-out).
    ///
    /// # Errors
    ///
    /// Propagates [`HeapError::Mem`] range errors.
    pub fn read_payload(&self, obj: &ObjectRef, buf: &mut [u8]) -> Result<()> {
        debug_assert_eq!(buf.len(), obj.byte_len());
        let _gate = self.inner.world.read_recursive();
        self.inner
            .memory
            .read_bytes_unchecked(TaggedPtr::from_addr(obj.data_addr()), buf)?;
        Ok(())
    }

    /// Overwrites an object's entire payload without tag checks (runtime
    /// internal, e.g. guarded copy's copy-back).
    ///
    /// # Errors
    ///
    /// Propagates [`HeapError::Mem`] range errors.
    pub fn write_payload(&self, obj: &ObjectRef, buf: &[u8]) -> Result<()> {
        debug_assert_eq!(buf.len(), obj.byte_len());
        let _gate = self.inner.world.read_recursive();
        self.inner
            .memory
            .write_bytes_unchecked(TaggedPtr::from_addr(obj.data_addr()), buf)?;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Pinning (the JNI critical-section contract)
    // ------------------------------------------------------------------

    /// Pins `obj` against collection and relocation, returning the new pin
    /// count. Every acquire through a protection scheme pins; the final
    /// `Release*` unpins. While pinned, [`Heap::sweep`] never reclaims and
    /// [`Heap::compact`] never moves the object — even after the last Java
    /// handle dies mid-borrow.
    pub fn pin(&self, obj: &ObjectRef) -> u32 {
        // Shared world-gate hold: a pin can never land on an address the
        // collector is concurrently rewriting.
        let _gate = self.inner.world.read_recursive();
        self.inner.pins.pin(&obj.token)
    }

    /// Drops one pin from the object at header address `addr`, returning
    /// the remaining count (`Some(0)` means the borrow fully ended), or
    /// `None` if the address was not pinned.
    pub fn unpin(&self, addr: u64) -> Option<u32> {
        self.inner.pins.unpin(addr)
    }

    /// Whether the object at header address `addr` is currently pinned.
    pub fn is_pinned(&self, addr: u64) -> bool {
        self.inner.pins.is_pinned(addr)
    }

    /// Number of distinct currently-pinned objects.
    pub fn pinned_count(&self) -> usize {
        self.inner.pins.pinned_objects()
    }

    /// Resurrects a handle to the pinned object at header address `addr` —
    /// how a `Release*` reaches an object whose last Java handle died
    /// during the native borrow.
    pub fn pinned_handle(&self, addr: u64) -> Option<ObjectRef> {
        self.inner.pins.token(addr).map(|token| ObjectRef { token })
    }

    /// Installs the compaction relocation callback (old payload address,
    /// new payload address). Replaces any previous hook.
    pub fn set_relocation_hook(&self, hook: impl Fn(u64, u64) + Send + Sync + 'static) {
        *self.inner.relocation_hook.lock() = Some(Arc::new(hook));
    }

    /// Installs the GC safepoint callback. Replaces any previous hook.
    pub fn set_safepoint_hook(&self, hook: impl Fn(&Safepoint<'_>) + Send + Sync + 'static) {
        *self.inner.safepoint_hook.lock() = Some(Arc::new(hook));
    }

    // ------------------------------------------------------------------
    // GC
    // ------------------------------------------------------------------

    /// Sweeps dead objects (those with no live handles), returning their
    /// blocks to the allocator and clearing their memory tags so a stale
    /// tag can never alias a future allocation.
    ///
    /// Pinned objects are never reclaimed: an object borrowed by native
    /// code through a critical interface survives — at a stable address,
    /// with its tag-table entry intact — until the final `Release*`
    /// unpins it, per the JNI pinning contract.
    pub fn sweep(&self) -> GcStats {
        // Shared world hold for the whole sweep: a concurrent compaction
        // (the exclusive holder) cannot invalidate the candidate
        // snapshot while the objects lock is dropped across the
        // safepoint hook.
        let _world = self.inner.world.read_recursive();
        // One sweep at a time. The candidate snapshot below is shown to
        // the safepoint hook — which force-purges tag-table entries and
        // zeroes tags for those addresses — with the objects lock
        // dropped. Were a second sweep allowed to run in that window it
        // could reclaim a candidate, the allocator could reuse the
        // address, and a mutator could pin + acquire a brand-new object
        // there; this sweep's hook would then purge the *new* object's
        // live entry, faulting a legitimate borrow. Serializing sweeps
        // (with compaction already excluded by the world gate) means no
        // candidate's block can be freed between snapshot and purge.
        let _serial = self.inner.sweep_serial.lock();
        let mut dead: Vec<(u64, usize, usize)> = {
            let objects = self.inner.objects.lock();
            objects
                .iter()
                .filter(|(&addr, m)| {
                    m.live.strong_count() == 0 && !self.inner.pins.is_pinned(addr)
                })
                .map(|(&addr, m)| (addr, m.block_len, m.byte_len))
                .collect()
        };
        // Address order, not map order: the safepoint hook does
        // per-candidate work, so the candidate order must not leak the
        // hash map's iteration order (seeded schedules replay bit for
        // bit).
        dead.sort_unstable();
        // The safepoint fires before any candidate is reclaimed: a
        // protection scheme may still hold table entries for these dead
        // objects (parked borrow-stash credits), and those entries must
        // be gone before the addresses return to the allocator.
        let safepoint = self.inner.safepoint_hook.lock().clone();
        if let Some(safepoint) = safepoint {
            let candidates: Vec<(u64, u64)> = dead
                .iter()
                .map(|&(addr, _, byte_len)| {
                    let payload = addr + HEADER_SIZE as u64;
                    (payload, payload + byte_len as u64)
                })
                .collect();
            safepoint(&Safepoint { phase: SafepointPhase::Sweep, candidates: &candidates });
        }
        let mut objects = self.inner.objects.lock();
        let mut bytes = 0usize;
        let mut swept = 0usize;
        for &(addr, block_len, _) in &dead {
            // Defensive re-check under the re-taken lock. With sweeps
            // serialized nothing else reclaims candidates, but keeping
            // reclamation idempotent costs one map probe and guards any
            // future caller that bypasses the serialization.
            let still_dead = objects.get(&addr).is_some_and(|m| {
                m.block_len == block_len
                    && m.live.strong_count() == 0
                    && !self.inner.pins.is_pinned(addr)
            });
            if !still_dead {
                continue;
            }
            objects.remove(&addr);
            if self.inner.config.prot_mte {
                let p = TaggedPtr::from_addr(addr);
                self.inner
                    .memory
                    .set_tag_range(p, addr + block_len as u64, Tag::UNTAGGED)
                    .expect("heap blocks are PROT_MTE");
            }
            self.inner.blocks.free(addr, block_len);
            bytes += block_len;
            swept += 1;
        }
        let live = objects.len();
        drop(objects);
        self.inner.swept_total.fetch_add(swept as u64, Ordering::Relaxed);
        self.inner.sweeps.fetch_add(1, Ordering::Relaxed);
        let stats = GcStats {
            swept,
            bytes_freed: bytes,
            live,
            pinned: self.inner.pins.pinned_objects(),
        };
        telemetry::trace::emit(|| telemetry::trace::TraceEvent::Sweep {
            swept: stats.swept as u64,
            pinned: stats.pinned as u64,
        });
        stats
    }

    /// Mark–compact collection over the block allocator: slides every
    /// unpinned live object toward the bottom of the heap, reclaims dead
    /// objects, rewrites handles through their shared liveness tokens,
    /// migrates memory tags with the payload (re-tags the destination,
    /// zeroes the source), and fires the relocation hook per move so the
    /// protection scheme can rehome tag-table entries. Pinned objects are
    /// immovable obstacles, exactly like ART's critical-section pinning.
    ///
    /// Runs stop-the-world: payload accessors block on the world gate for
    /// the duration.
    pub fn compact(&self) -> CompactStats {
        let timing = telemetry::start_timing();
        let t0 = std::time::Instant::now();
        let world = self.inner.world.write();
        // With the world stopped, notify the protection scheme before
        // anything moves: every unpinned object is a move (or reclaim)
        // candidate, and any table entry still tracking one — alive only
        // through parked borrow-stash credits, since pinning is what a
        // live borrow implies — must be retired before its address is
        // re-tagged or handed to another object. No mutator can pin
        // while the exclusive hold lasts, so the candidate set is stable.
        let safepoint = self.inner.safepoint_hook.lock().clone();
        if let Some(safepoint) = &safepoint {
            let mut candidates: Vec<(u64, u64)> = {
                let objects = self.inner.objects.lock();
                objects
                    .iter()
                    .filter(|(&addr, _)| !self.inner.pins.is_pinned(addr))
                    .map(|(&addr, m)| {
                        let payload = addr + HEADER_SIZE as u64;
                        (payload, payload + m.byte_len as u64)
                    })
                    .collect()
            };
            // Address order, not map order: keeps seeded stress
            // schedules bit-reproducible (see `sweep`).
            candidates.sort_unstable();
            safepoint(&Safepoint {
                phase: SafepointPhase::CompactBegin,
                candidates: &candidates,
            });
        }
        let mut objects = self.inner.objects.lock();
        let mem = &self.inner.memory;
        let mut entries: Vec<(u64, ObjectMeta)> = objects.drain().collect();
        entries.sort_unstable_by_key(|&(addr, _)| addr);
        let heap_start = self.inner.blocks.start();
        let old_extent = entries
            .last()
            .map_or(heap_start, |&(addr, ref m)| addr + m.block_len as u64);
        // Tag migration needs granule-aligned blocks; the misaligned_mte
        // ablation config deliberately violates that, so it moves bytes
        // but leaves tags alone (its granule-sharing hazard is the point).
        let migrate_tags =
            self.inner.config.prot_mte && self.inner.config.alignment.is_multiple_of(GRANULE);
        let mut stats = CompactStats::default();
        let mut cursor = heap_start;
        let mut layout: Vec<(u64, u64)> = Vec::with_capacity(entries.len());
        let mut moves: Vec<(u64, u64)> = Vec::new();
        let mut buf = Vec::new();
        for (addr, meta) in entries {
            let block_len = meta.block_len as u64;
            let Some(token) = meta.live.upgrade() else {
                if self.inner.pins.is_pinned(addr) {
                    // Unreachable in practice — the ledger holds a strong
                    // token — but the contract is stated defensively.
                    stats.pinned_skipped += 1;
                    cursor = cursor.max(addr + block_len);
                    layout.push((addr, block_len));
                    objects.insert(addr, meta);
                    continue;
                }
                // Dead: reclaiming is simply not carrying the block into
                // the new layout; its tags are zeroed with the free space.
                stats.reclaimed_dead += 1;
                stats.bytes_freed += meta.block_len;
                continue;
            };
            if self.inner.pins.is_pinned(addr) {
                // Natively borrowed: the raw pointer handed out by the
                // protection scheme must stay valid, so the object is an
                // obstacle the slide flows around.
                stats.pinned_skipped += 1;
                cursor = cursor.max(addr + block_len);
                layout.push((addr, block_len));
                objects.insert(addr, meta);
                continue;
            }
            let new_addr = cursor;
            cursor += block_len;
            layout.push((new_addr, block_len));
            if new_addr == addr {
                objects.insert(addr, meta);
                continue;
            }
            debug_assert!(new_addr < addr, "sliding compaction only moves down");
            buf.resize(meta.block_len, 0);
            mem.read_bytes_unchecked(TaggedPtr::from_addr(addr), &mut buf)
                .expect("live blocks lie inside the heap");
            mem.write_bytes_unchecked(TaggedPtr::from_addr(new_addr), &buf)
                .expect("destination blocks lie inside the heap");
            if migrate_tags {
                // Migrate granule tags with the payload, coalescing
                // equal-tag runs into single range stores. Source tags are
                // read before the destination store of the same granule
                // can clobber them: new_addr < addr and granules advance
                // upward, so granule g's source read happens before any
                // destination store at or above it.
                let granule = GRANULE as u64;
                let granules = block_len / granule;
                let mut g = 0;
                while g < granules {
                    let tag = mem
                        .raw_tag_at(addr + g * granule)
                        .expect("live blocks lie inside the heap");
                    let mut run = 1;
                    while g + run < granules
                        && mem
                            .raw_tag_at(addr + (g + run) * granule)
                            .expect("live blocks lie inside the heap")
                            == tag
                    {
                        run += 1;
                    }
                    mem.set_tag_range(
                        TaggedPtr::from_addr(new_addr + g * granule),
                        new_addr + (g + run) * granule,
                        tag,
                    )
                    .expect("heap blocks are PROT_MTE");
                    g += run;
                }
            }
            token.relocate(new_addr);
            moves.push((addr + HEADER_SIZE as u64, new_addr + HEADER_SIZE as u64));
            stats.moved_objects += 1;
            stats.moved_bytes += meta.block_len;
            objects.insert(new_addr, meta);
        }
        self.inner.blocks.reset_layout(&layout);
        if migrate_tags {
            // Zero the tags of every vacated region below the old
            // high-water mark so a stale tag can never alias a future
            // allocation ("zero the source").
            let mut free_cursor = heap_start;
            for &(addr, len) in &layout {
                if addr > free_cursor && free_cursor < old_extent {
                    mem.set_tag_range(
                        TaggedPtr::from_addr(free_cursor),
                        addr.min(old_extent),
                        Tag::UNTAGGED,
                    )
                    .expect("heap blocks are PROT_MTE");
                }
                free_cursor = addr + len;
            }
            if free_cursor < old_extent {
                mem.set_tag_range(
                    TaggedPtr::from_addr(free_cursor),
                    old_extent,
                    Tag::UNTAGGED,
                )
                .expect("heap blocks are PROT_MTE");
            }
        }
        drop(objects);
        // Rehome tag-table entries keyed by moved payload addresses while
        // the world is still stopped, so no acquire can observe a
        // half-moved key.
        let hook = self.inner.relocation_hook.lock().clone();
        if let Some(hook) = hook {
            for &(old, new) in &moves {
                hook(old, new);
            }
        }
        // Mirror notification before the world resumes, so schemes that
        // gated asynchronous bookkeeping at CompactBegin can release it.
        if let Some(safepoint) = &safepoint {
            safepoint(&Safepoint { phase: SafepointPhase::CompactEnd, candidates: &[] });
        }
        drop(world);
        stats.pause = t0.elapsed();
        self.inner
            .swept_total
            .fetch_add(stats.reclaimed_dead as u64, Ordering::Relaxed);
        self.inner.compactions.fetch_add(1, Ordering::Relaxed);
        self.inner
            .moved_objects_total
            .fetch_add(stats.moved_objects as u64, Ordering::Relaxed);
        self.inner
            .moved_bytes_total
            .fetch_add(stats.moved_bytes as u64, Ordering::Relaxed);
        telemetry::record_rare(|| telemetry::Event::GcCompact {
            moved: u32::try_from(stats.moved_objects).unwrap_or(u32::MAX),
        });
        if let Some(start) = timing {
            telemetry::record_latency(
                "heap",
                "Compact",
                telemetry::SizeClass::from_bytes(stats.moved_bytes as u64),
                telemetry::LatencyOp::GcPause,
                start,
            );
        }
        telemetry::trace::emit(|| telemetry::trace::TraceEvent::Compact {
            moved: stats.moved_objects as u64,
            reclaimed: stats.reclaimed_dead as u64,
        });
        stats
    }

    /// Scans every live object's memory — header and payload — through
    /// `scanner`, using **untagged** pointers, exactly like a GC marking
    /// thread that never went through a JNI tagging interface.
    ///
    /// With MTE4JNI's thread-level control the scanner has `TCO` set and
    /// the scan is silent; a naively process-wide MTE enablement makes
    /// this scan fault on every object currently tagged for native code
    /// (paper §3.3).
    pub fn scan_live(&self, scanner: &MteThread) -> ScanOutcome {
        let _gate = self.inner.world.read_recursive();
        let tokens: Vec<(u64, usize)> = {
            let objects = self.inner.objects.lock();
            objects
                .iter()
                .filter(|(_, m)| m.live.strong_count() > 0)
                .map(|(&addr, m)| (addr, HEADER_SIZE + m.byte_len))
                .collect()
        };
        let mut outcome = ScanOutcome::default();
        let mut buf = Vec::new();
        for (addr, len) in tokens {
            buf.resize(len, 0);
            let ptr = TaggedPtr::from_addr(addr); // untagged, like a GC root
            match self.inner.memory.read_bytes(scanner, ptr, &mut buf) {
                Ok(()) => {}
                Err(mte_sim::MemError::TagCheck(fault)) => outcome.faults.push(*fault),
                // Reachable if an object moves between snapshot and read
                // (e.g. a concurrent compaction); report, don't panic the
                // GC thread.
                Err(other) => outcome.errors.push(other),
            }
            outcome.objects += 1;
            outcome.bytes += len;
        }
        // Async-mode scanners latch instead of failing; surface it here the
        // way the kernel would at the scanner's next syscall.
        if let Err(fault) = scanner.syscall("madvise") {
            outcome.faults.push(fault);
        }
        outcome
    }

    /// Number of live (handle-reachable) objects.
    pub fn live_count(&self) -> usize {
        self.inner
            .objects
            .lock()
            .values()
            .filter(|m| m.live.strong_count() > 0)
            .count()
    }

    /// Aggregate heap statistics.
    pub fn stats(&self) -> HeapStats {
        HeapStats {
            live_objects: self.live_count(),
            bytes_in_use: self.inner.blocks.bytes_in_use(),
            fragmentation_bytes: self.inner.blocks.fragmentation_bytes(),
            allocated_total: self.inner.allocated_total.load(Ordering::Relaxed),
            swept_total: self.inner.swept_total.load(Ordering::Relaxed),
            sweeps: self.inner.sweeps.load(Ordering::Relaxed),
            pinned_objects: self.inner.pins.pinned_objects(),
            pins_total: self.inner.pins.pins_total(),
            unpins_total: self.inner.pins.unpins_total(),
            compactions: self.inner.compactions.load(Ordering::Relaxed),
            moved_objects_total: self.inner.moved_objects_total.load(Ordering::Relaxed),
            moved_bytes_total: self.inner.moved_bytes_total.load(Ordering::Relaxed),
        }
    }
}

impl fmt::Debug for Heap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Heap")
            .field("config", &self.inner.config)
            .field("stats", &self.stats())
            .finish()
    }
}

/// Result of one [`Heap::sweep`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GcStats {
    /// Objects collected.
    pub swept: usize,
    /// Block bytes returned to the allocator.
    pub bytes_freed: usize,
    /// Objects still live after the sweep.
    pub live: usize,
    /// Objects held back by the pin ledger (natively borrowed).
    pub pinned: usize,
}

/// Result of one [`Heap::compact`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CompactStats {
    /// Objects relocated.
    pub moved_objects: usize,
    /// Block bytes relocated.
    pub moved_bytes: usize,
    /// Pinned objects left in place as obstacles.
    pub pinned_skipped: usize,
    /// Dead objects reclaimed during the pass.
    pub reclaimed_dead: usize,
    /// Block bytes those dead objects covered.
    pub bytes_freed: usize,
    /// Stop-the-world duration of the pass.
    pub pause: Duration,
}

/// Result of one [`Heap::scan_live`].
#[derive(Clone, Debug, Default)]
pub struct ScanOutcome {
    /// Objects scanned.
    pub objects: usize,
    /// Bytes read.
    pub bytes: usize,
    /// Tag-check faults the scanner hit (empty for a correctly configured
    /// runtime thread).
    pub faults: Vec<TagCheckFault>,
    /// Non-tag-check memory errors (e.g. a racing relocation moved an
    /// object out from under the snapshot).
    pub errors: Vec<mte_sim::MemError>,
}

/// Point-in-time heap statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HeapStats {
    /// Objects with live handles.
    pub live_objects: usize,
    /// Bytes currently held by object blocks.
    pub bytes_in_use: u64,
    /// Cumulative internal fragmentation from alignment rounding.
    pub fragmentation_bytes: u64,
    /// Objects ever allocated.
    pub allocated_total: u64,
    /// Objects ever swept.
    pub swept_total: u64,
    /// Sweep cycles run.
    pub sweeps: u64,
    /// Currently-pinned (natively borrowed) objects.
    pub pinned_objects: usize,
    /// Cumulative pins ever taken.
    pub pins_total: u64,
    /// Cumulative pins ever dropped.
    pub unpins_total: u64,
    /// Compaction passes run.
    pub compactions: u64,
    /// Objects ever relocated by compaction.
    pub moved_objects_total: u64,
    /// Block bytes ever relocated by compaction.
    pub moved_bytes_total: u64,
}

macro_rules! element_accessors {
    (
        $prim:expr, $rust:ty,
        $alloc:ident, $alloc_from:ident, $at:ident, $set_at:ident, $as_vec:ident,
        $load:ident, $store:ident, $decode:expr, $encode:expr
    ) => {
        impl Heap {
            #[doc = concat!("Allocates a zero-filled `", stringify!($prim), "` array.")]
            ///
            /// # Errors
            ///
            /// [`HeapError::OutOfMemory`] when the heap is exhausted.
            pub fn $alloc(&self, len: usize) -> Result<ArrayRef> {
                self.alloc_array($prim, len)
            }

            /// Allocates an array initialized from `values`.
            ///
            /// # Errors
            ///
            /// [`HeapError::OutOfMemory`] when the heap is exhausted.
            pub fn $alloc_from(&self, values: &[$rust]) -> Result<ArrayRef> {
                let a = self.alloc_array($prim, values.len())?;
                let mut bytes = Vec::with_capacity(a.byte_len());
                for &v in values {
                    let enc = $encode(v);
                    bytes.extend_from_slice(&enc.to_le_bytes());
                }
                let _gate = self.inner.world.read_recursive();
                self.inner
                    .memory
                    .write_bytes_unchecked(TaggedPtr::from_addr(a.data_addr()), &bytes)?;
                Ok(a)
            }

            /// Managed (bounds- and type-checked) element read — the JVM's
            /// own safe path.
            ///
            /// # Errors
            ///
            /// [`HeapError::IndexOutOfBounds`] or [`HeapError::TypeMismatch`]
            /// on a bad access; [`HeapError::Mem`] on memory errors.
            pub fn $at(&self, t: &JavaThread, a: &ArrayRef, index: usize) -> Result<$rust> {
                let _gate = self.inner.world.read_recursive();
                let p = self.elem_ptr(a, $prim, index)?;
                let raw = self.inner.memory.$load(t.mte(), p)?;
                Ok($decode(raw))
            }

            /// Managed (bounds- and type-checked) element write.
            ///
            /// # Errors
            ///
            /// See the corresponding read accessor.
            pub fn $set_at(
                &self,
                t: &JavaThread,
                a: &ArrayRef,
                index: usize,
                value: $rust,
            ) -> Result<()> {
                let _gate = self.inner.world.read_recursive();
                let p = self.elem_ptr(a, $prim, index)?;
                self.inner.memory.$store(t.mte(), p, $encode(value))?;
                Ok(())
            }

            /// Copies the whole array out through the managed path.
            ///
            /// # Errors
            ///
            /// [`HeapError::TypeMismatch`] for the wrong element type;
            /// [`HeapError::Mem`] on memory errors.
            pub fn $as_vec(&self, t: &JavaThread, a: &ArrayRef) -> Result<Vec<$rust>> {
                let mut out = Vec::with_capacity(a.len());
                for i in 0..a.len() {
                    out.push(self.$at(t, a, i)?);
                }
                Ok(out)
            }
        }
    };
}

element_accessors!(
    PrimitiveType::Boolean, bool,
    alloc_boolean_array, alloc_boolean_array_from, boolean_at, set_boolean_at, boolean_array_as_vec,
    load_u8, store_u8, |raw: u8| raw != 0, |v: bool| u8::from(v)
);
element_accessors!(
    PrimitiveType::Byte, i8,
    alloc_byte_array, alloc_byte_array_from, byte_at, set_byte_at, byte_array_as_vec,
    load_u8, store_u8, |raw: u8| raw as i8, |v: i8| v as u8
);
element_accessors!(
    PrimitiveType::Char, u16,
    alloc_char_array, alloc_char_array_from, char_at, set_char_at, char_array_as_vec,
    load_u16, store_u16, |raw: u16| raw, |v: u16| v
);
element_accessors!(
    PrimitiveType::Short, i16,
    alloc_short_array, alloc_short_array_from, short_at, set_short_at, short_array_as_vec,
    load_u16, store_u16, |raw: u16| raw as i16, |v: i16| v as u16
);
element_accessors!(
    PrimitiveType::Int, i32,
    alloc_int_array, alloc_int_array_from, int_at, set_int_at, int_array_as_vec,
    load_u32, store_u32, |raw: u32| raw as i32, |v: i32| v as u32
);
element_accessors!(
    PrimitiveType::Long, i64,
    alloc_long_array, alloc_long_array_from, long_at, set_long_at, long_array_as_vec,
    load_u64, store_u64, |raw: u64| raw as i64, |v: i64| v as u64
);
element_accessors!(
    PrimitiveType::Float, f32,
    alloc_float_array, alloc_float_array_from, float_at, set_float_at, float_array_as_vec,
    load_u32, store_u32, f32::from_bits, |v: f32| v.to_bits()
);
element_accessors!(
    PrimitiveType::Double, f64,
    alloc_double_array, alloc_double_array_from, double_at, set_double_at, double_array_as_vec,
    load_u64, store_u64, f64::from_bits, |v: f64| v.to_bits()
);

#[cfg(test)]
mod tests {
    use super::*;

    fn heap() -> Heap {
        Heap::new(HeapConfig::default())
    }

    #[test]
    fn int_array_round_trip() {
        let h = heap();
        let t = JavaThread::new("main");
        let a = h.alloc_int_array_from(&[-1, 0, i32::MAX, i32::MIN]).unwrap();
        assert_eq!(h.int_array_as_vec(&t, &a).unwrap(), vec![-1, 0, i32::MAX, i32::MIN]);
        h.set_int_at(&t, &a, 1, 77).unwrap();
        assert_eq!(h.int_at(&t, &a, 1).unwrap(), 77);
    }

    #[test]
    fn all_types_round_trip() {
        let h = heap();
        let t = JavaThread::new("main");
        let b = h.alloc_boolean_array_from(&[true, false, true]).unwrap();
        assert_eq!(h.boolean_array_as_vec(&t, &b).unwrap(), vec![true, false, true]);
        let y = h.alloc_byte_array_from(&[-128, 127]).unwrap();
        assert_eq!(h.byte_array_as_vec(&t, &y).unwrap(), vec![-128, 127]);
        let c = h.alloc_char_array_from(&[0x0041, 0xFFFF]).unwrap();
        assert_eq!(h.char_array_as_vec(&t, &c).unwrap(), vec![0x0041, 0xFFFF]);
        let s = h.alloc_short_array_from(&[-5, 5]).unwrap();
        assert_eq!(h.short_array_as_vec(&t, &s).unwrap(), vec![-5, 5]);
        let l = h.alloc_long_array_from(&[i64::MIN, i64::MAX]).unwrap();
        assert_eq!(h.long_array_as_vec(&t, &l).unwrap(), vec![i64::MIN, i64::MAX]);
        let f = h.alloc_float_array_from(&[1.5, -0.0]).unwrap();
        assert_eq!(h.float_array_as_vec(&t, &f).unwrap(), vec![1.5, -0.0]);
        let d = h.alloc_double_array_from(&[std::f64::consts::PI]).unwrap();
        assert_eq!(h.double_array_as_vec(&t, &d).unwrap(), vec![std::f64::consts::PI]);
    }

    #[test]
    fn fresh_arrays_are_zeroed() {
        let h = heap();
        let t = JavaThread::new("main");
        let a = h.alloc_int_array(16).unwrap();
        assert_eq!(h.int_array_as_vec(&t, &a).unwrap(), vec![0; 16]);
    }

    #[test]
    fn managed_access_bounds_checked() {
        let h = heap();
        let t = JavaThread::new("main");
        let a = h.alloc_int_array(18).unwrap();
        // The JVM catches what native code would not: index 21 of 18.
        assert_eq!(
            h.int_at(&t, &a, 21),
            Err(HeapError::IndexOutOfBounds { index: 21, length: 18 })
        );
        assert!(h.set_int_at(&t, &a, 18, 1).is_err());
        assert!(h.set_int_at(&t, &a, 17, 1).is_ok());
    }

    #[test]
    fn managed_access_type_checked() {
        let h = heap();
        let t = JavaThread::new("main");
        let a = h.alloc_byte_array(4).unwrap();
        assert!(matches!(
            h.int_at(&t, &a, 0),
            Err(HeapError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn alignment_respects_config() {
        for align in [8usize, 16] {
            let h = Heap::new(HeapConfig {
                alignment: align,
                ..HeapConfig::default()
            });
            for len in [1usize, 3, 7, 18] {
                let a = h.alloc_int_array(len).unwrap();
                assert_eq!(a.addr() % align as u64, 0, "align {align} len {len}");
            }
        }
    }

    #[test]
    fn string_round_trip() {
        let h = heap();
        let s = h.alloc_string("Hello, 世界 😀").unwrap();
        assert_eq!(h.read_string(&s).unwrap(), "Hello, 世界 😀");
        assert_eq!(s.len(), "Hello, 世界 😀".encode_utf16().count());
    }

    #[test]
    fn sweep_collects_only_dead_objects() {
        let h = heap();
        let keep = h.alloc_int_array(8).unwrap();
        {
            let _drop_me = h.alloc_int_array(8).unwrap();
        }
        let stats = h.sweep();
        assert_eq!(stats.swept, 1);
        assert_eq!(stats.live, 1);
        assert_eq!(h.live_count(), 1);
        drop(keep);
        assert_eq!(h.sweep().swept, 1);
        assert_eq!(h.live_count(), 0);
    }

    #[test]
    fn sweep_allows_address_reuse() {
        let h = heap();
        let addr = {
            let a = h.alloc_int_array(64).unwrap();
            a.addr()
        };
        h.sweep();
        let b = h.alloc_int_array(64).unwrap();
        assert_eq!(b.addr(), addr, "freed block reused first-fit");
    }

    #[test]
    fn sweep_clears_stale_tags() {
        let h = heap();
        let (addr, end) = {
            let a = h.alloc_int_array(8).unwrap();
            let p = TaggedPtr::from_addr(a.addr());
            h.memory()
                .set_tag_range(p, a.addr() + 48, Tag::new(0xD).unwrap())
                .unwrap();
            (a.addr(), a.addr() + 48)
        };
        h.sweep();
        let mut a = addr;
        while a < end {
            assert_eq!(h.memory().raw_tag_at(a).unwrap(), Tag::UNTAGGED);
            a += 16;
        }
    }

    /// Regression for sweep serialization: a Sweep-phase safepoint
    /// candidate must still be dead and unreclaimed when the hook sees
    /// it. Without `sweep_serial`, a racing sweep could reclaim a
    /// candidate and the allocator could hand the address to a new live
    /// object before this sweep's hook runs — the hook would then purge
    /// the new object's tag-table entry out from under a mutator.
    /// Workers publish every currently-live payload address to a shared
    /// set (unpublishing *before* the handle drops, so a legitimately
    /// dead candidate can never be in the set); the hook cross-checks
    /// each candidate against it.
    #[test]
    fn concurrent_sweeps_never_present_a_live_address_as_a_candidate() {
        use std::collections::HashSet;
        use std::sync::Barrier;
        let h = heap();
        let live: Arc<Mutex<HashSet<u64>>> = Arc::new(Mutex::new(HashSet::new()));
        let violations = Arc::new(AtomicU64::new(0));
        {
            let live = Arc::clone(&live);
            let violations = Arc::clone(&violations);
            h.set_safepoint_hook(move |sp| {
                if sp.phase != SafepointPhase::Sweep {
                    return;
                }
                let live = live.lock();
                for &(begin, _) in sp.candidates {
                    if live.contains(&begin) {
                        violations.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
        let barrier = Arc::new(Barrier::new(4));
        let workers: Vec<_> = (0..4)
            .map(|_| {
                let h = h.clone();
                let live = Arc::clone(&live);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    for _ in 0..64 {
                        let a = h.alloc_int_array(8).unwrap();
                        live.lock().insert(a.data_addr());
                        // Sweep while the object is published, so other
                        // threads' hooks fire against a set that holds
                        // this (possibly just-reused) address.
                        h.sweep();
                        live.lock().remove(&a.data_addr());
                        drop(a);
                        h.sweep();
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        assert_eq!(violations.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn scan_live_reads_everything_quietly_for_runtime_threads() {
        let h = heap();
        let _a = h.alloc_int_array(100).unwrap();
        let _b = h.alloc_string("gc test").unwrap();
        let scanner = MteThread::new("HeapTaskDaemon"); // TCO set by default
        let outcome = h.scan_live(&scanner);
        assert_eq!(outcome.objects, 2);
        assert!(outcome.faults.is_empty());
        assert!(outcome.bytes >= 100 * 4 + HEADER_SIZE);
    }

    #[test]
    fn out_of_memory_is_reported() {
        let h = Heap::new(HeapConfig {
            memory: MemoryConfig {
                base: 0x7a00_0000_0000,
                size: 64 << 10,
            },
            ..HeapConfig::default()
        });
        // Heap region is 48 KiB; this cannot fit.
        assert!(matches!(
            h.alloc_byte_array(1 << 20),
            Err(HeapError::OutOfMemory { .. })
        ));
    }

    #[test]
    fn data_starts_after_header_on_granule_boundary() {
        let h = heap();
        let a = h.alloc_int_array(4).unwrap();
        assert_eq!(a.data_addr(), a.addr() + 16);
        assert_eq!(a.data_addr() % 16, 0);
    }

    #[test]
    fn stats_track_allocation_lifecycle() {
        let h = heap();
        let _a = h.alloc_int_array(10).unwrap();
        {
            let _b = h.alloc_int_array(10).unwrap();
        }
        h.sweep();
        let s = h.stats();
        assert_eq!(s.allocated_total, 2);
        assert_eq!(s.swept_total, 1);
        assert_eq!(s.live_objects, 1);
        assert_eq!(s.sweeps, 1);
        assert!(s.bytes_in_use >= 56);
    }

    /// The headline regression: a dead-but-borrowed object survives sweep
    /// until its last release.
    #[test]
    fn sweep_never_reclaims_a_pinned_object() {
        let h = heap();
        let t = JavaThread::new("main");
        let a = h.alloc_int_array_from(&[11, 22, 33]).unwrap();
        let addr = a.addr();
        assert_eq!(h.pin(&a.as_object()), 1);
        drop(a); // the last Java handle dies mid-borrow
        let stats = h.sweep();
        assert_eq!(stats.swept, 0, "pinned object must survive the sweep");
        assert_eq!(stats.pinned, 1);
        // Native code can still reach the object through the pin ledger.
        let resurrected = h.pinned_handle(addr).expect("still pinned");
        let arr = resurrected.as_array().unwrap();
        assert_eq!(h.int_array_as_vec(&t, &arr).unwrap(), vec![11, 22, 33]);
        assert_eq!(h.unpin(addr), Some(0)); // the final Release*
        drop(arr);
        drop(resurrected);
        assert_eq!(h.sweep().swept, 1, "collected after the final release");
        assert!(h.pinned_handle(addr).is_none());
        let s = h.stats();
        assert_eq!((s.pins_total, s.unpins_total, s.pinned_objects), (1, 1, 0));
    }

    #[test]
    fn compaction_round_trip_preserves_payloads_and_migrates_tags() {
        let h = heap();
        let t = JavaThread::new("main");
        // Fragment the heap: interleave survivors with garbage.
        let mut keep = Vec::new();
        for i in 0..8i32 {
            keep.push(h.alloc_int_array_from(&[i; 16]).unwrap());
            let _garbage = h.alloc_int_array(16).unwrap();
        }
        h.sweep();
        // Give one survivor a lingering JNI-style tag over header + two
        // payload granules.
        let tag = Tag::new(0x7).unwrap();
        let tagged_old = keep[5].addr();
        h.memory()
            .set_tag_range(TaggedPtr::from_addr(tagged_old), tagged_old + 48, tag)
            .unwrap();
        let old_addrs: Vec<u64> = keep.iter().map(|k| k.addr()).collect();
        let stats = h.compact();
        // keep[0] was already bottom-most; the other seven slide down.
        assert_eq!(stats.moved_objects, 7);
        assert_eq!(stats.pinned_skipped, 0);
        for (k, &old) in keep.iter().zip(&old_addrs) {
            assert!(k.addr() <= old, "sliding compaction only moves down");
        }
        // Payloads are bit-identical through the relocated handles.
        for (i, k) in keep.iter().enumerate() {
            assert_eq!(h.int_array_as_vec(&t, k).unwrap(), vec![i as i32; 16]);
        }
        // Tags migrated: valid at the destination…
        let tagged_new = keep[5].addr();
        assert_ne!(tagged_new, tagged_old);
        for g in 0..3 {
            assert_eq!(h.memory().raw_tag_at(tagged_new + g * 16).unwrap(), tag);
        }
        // …and zeroed at the (now free) source.
        for g in 0..3 {
            assert_eq!(
                h.memory().raw_tag_at(tagged_old + g * 16).unwrap(),
                Tag::UNTAGGED
            );
        }
        let s = h.stats();
        assert_eq!(s.compactions, 1);
        assert_eq!(s.moved_objects_total, 7);
        assert_eq!(s.moved_bytes_total, stats.moved_bytes as u64);
    }

    #[test]
    fn compaction_never_moves_a_pinned_object() {
        let h = heap();
        let garbage = h.alloc_int_array(16).unwrap();
        let pinned = h.alloc_int_array_from(&[9; 16]).unwrap();
        let mover = h.alloc_int_array_from(&[4; 16]).unwrap();
        let pinned_addr = pinned.addr();
        let mover_old = mover.addr();
        h.pin(&pinned.as_object());
        drop(garbage);
        let stats = h.compact();
        assert_eq!(pinned.addr(), pinned_addr, "pinned object is an obstacle");
        assert_eq!(stats.pinned_skipped, 1);
        assert_eq!(stats.reclaimed_dead, 1);
        // The mover cannot slide below the pinned obstacle; it stays put
        // because its slot already followed the obstacle.
        assert_eq!(mover.addr(), mover_old);
        assert_eq!(stats.moved_objects, 0);
        // Unpin, then compact again: now everything slides down.
        h.unpin(pinned_addr);
        let stats = h.compact();
        assert_eq!(stats.pinned_skipped, 0);
        assert_eq!(stats.moved_objects, 2);
        assert!(pinned.addr() < pinned_addr);
        let t = JavaThread::new("main");
        assert_eq!(h.int_array_as_vec(&t, &pinned).unwrap(), vec![9; 16]);
        assert_eq!(h.int_array_as_vec(&t, &mover).unwrap(), vec![4; 16]);
    }

    #[test]
    fn relocation_hook_reports_payload_moves() {
        let h = heap();
        let moves = Arc::new(Mutex::new(Vec::new()));
        {
            let m = Arc::clone(&moves);
            h.set_relocation_hook(move |old, new| m.lock().push((old, new)));
        }
        let garbage = h.alloc_int_array(16).unwrap();
        let live = h.alloc_int_array(16).unwrap();
        let old_payload = live.data_addr();
        drop(garbage);
        h.sweep();
        let stats = h.compact();
        assert_eq!(stats.moved_objects, 1);
        assert_ne!(live.data_addr(), old_payload);
        assert_eq!(*moves.lock(), vec![(old_payload, live.data_addr())]);
    }

    #[test]
    fn compaction_reuses_reclaimed_space_for_new_allocations() {
        let h = heap();
        let mut survivors = Vec::new();
        for _ in 0..4 {
            let _garbage = h.alloc_int_array(64).unwrap();
            survivors.push(h.alloc_int_array(4).unwrap());
        }
        let before = h.stats().bytes_in_use;
        h.compact();
        let after = h.stats().bytes_in_use;
        assert!(after < before, "dead blocks reclaimed by the pass");
        // The heap is dense: the next allocation lands right after the
        // last survivor.
        let expected = survivors.iter().map(|s| s.addr()).max().unwrap() + 32;
        let next = h.alloc_int_array(4).unwrap();
        assert_eq!(next.addr(), expected);
    }

    #[test]
    fn racing_allocators_get_distinct_tag_streams() {
        let h = Heap::new(HeapConfig::alloc_tagged());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for _ in 0..200 {
                        let a = h.alloc_byte_array(8).unwrap();
                        let tag = h.memory().raw_tag_at(a.addr()).unwrap();
                        assert!(!tag.is_untagged(), "allocation tags are never zero");
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
    }
}

//! The simulated Java heap.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};

use parking_lot::Mutex;

use mte_sim::{
    MemoryConfig, MteThread, NativeAllocator, TagCheckFault, Tag, TaggedMemory, TaggedPtr,
};

use crate::block_alloc::BlockAllocator;
use crate::error::HeapError;
use crate::jstring::utf16_units;
use crate::object::{ArrayRef, LiveToken, ObjKind, ObjectRef, StringRef};
use crate::thread::JavaThread;
use crate::types::PrimitiveType;
use crate::Result;

/// Size of the simulated object header.
///
/// Real ART uses 8-byte headers for arrays (class pointer + monitor) plus a
/// 4-byte length; we round the whole header to 16 bytes so the payload of a
/// 16-byte aligned object starts on a granule boundary, which keeps header
/// tagging and payload tagging independent.
pub const HEADER_SIZE: usize = 16;

/// Heap construction parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HeapConfig {
    /// Backing simulated memory geometry.
    pub memory: MemoryConfig,
    /// Object alignment: 8 (stock ART) or 16 (MTE4JNI, paper §4.1).
    pub alignment: usize,
    /// Whether heap pages are mapped with `PROT_MTE`.
    pub prot_mte: bool,
    /// Whether every object is tagged with a random tag at *allocation*
    /// time (the HWASan/HeMate-style policy from the paper's related
    /// work, §6.2) rather than at JNI acquisition. Requires `prot_mte`.
    pub tag_on_alloc: bool,
}

impl HeapConfig {
    /// The paper's configuration: 16-byte alignment, `PROT_MTE` heap,
    /// tags assigned by the JNI interfaces (not at allocation).
    pub fn mte4jni() -> HeapConfig {
        HeapConfig {
            memory: MemoryConfig::default(),
            alignment: 16,
            prot_mte: true,
            tag_on_alloc: false,
        }
    }

    /// Stock ART: 8-byte alignment, no `PROT_MTE`.
    pub fn stock_art() -> HeapConfig {
        HeapConfig {
            memory: MemoryConfig::default(),
            alignment: 8,
            prot_mte: false,
            tag_on_alloc: false,
        }
    }

    /// Hazard configuration for the §4.1 ablation: `PROT_MTE` heap but
    /// stock 8-byte alignment, so two objects can share a tag granule.
    pub fn misaligned_mte() -> HeapConfig {
        HeapConfig {
            memory: MemoryConfig::default(),
            alignment: 8,
            prot_mte: true,
            tag_on_alloc: false,
        }
    }

    /// HWASan/HeMate-style policy: every object receives a random tag at
    /// allocation time (related-work comparison point, §6.2).
    pub fn alloc_tagged() -> HeapConfig {
        HeapConfig {
            memory: MemoryConfig::default(),
            alignment: 16,
            prot_mte: true,
            tag_on_alloc: true,
        }
    }
}

impl Default for HeapConfig {
    fn default() -> Self {
        HeapConfig::mte4jni()
    }
}

#[derive(Debug)]
struct ObjectMeta {
    block_len: usize,
    byte_len: usize,
    live: Weak<LiveToken>,
}

struct HeapInner {
    memory: Arc<TaggedMemory>,
    blocks: BlockAllocator,
    native: NativeAllocator,
    config: HeapConfig,
    objects: Mutex<HashMap<u64, ObjectMeta>>,
    allocated_total: AtomicU64,
    swept_total: AtomicU64,
    sweeps: AtomicU64,
    /// xorshift state for allocation-time tag generation.
    tag_rng: AtomicU64,
}

/// A simulated ART-style Java heap.
///
/// Cloning a `Heap` clones a reference to the same heap (it is an
/// `Arc`-backed handle, like `Runtime::Current()->GetHeap()` in ART).
///
/// # Example
///
/// ```
/// use art_heap::{Heap, HeapConfig, JavaThread};
///
/// # fn main() -> art_heap::Result<()> {
/// let heap = Heap::new(HeapConfig::default());
/// let thread = JavaThread::new("main");
/// let array = heap.alloc_int_array_from(&[1, 2, 3])?;
/// assert_eq!(heap.int_at(&thread, &array, 2)?, 3);
/// heap.set_int_at(&thread, &array, 0, 42)?;
/// assert_eq!(heap.int_array_as_vec(&thread, &array)?, vec![42, 2, 3]);
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct Heap {
    inner: Arc<HeapInner>,
}

impl Heap {
    /// Creates a heap. Three quarters of the simulated memory become the
    /// Java heap; the last quarter becomes the (never `PROT_MTE`) native
    /// arena used for guarded-copy shadow buffers.
    ///
    /// # Panics
    ///
    /// Panics if `alignment` is not 8 or 16.
    pub fn new(config: HeapConfig) -> Heap {
        assert!(
            config.alignment == 8 || config.alignment == 16,
            "object alignment must be 8 or 16"
        );
        assert!(
            !config.tag_on_alloc || config.prot_mte,
            "allocation-time tagging requires a PROT_MTE heap"
        );
        let memory = TaggedMemory::new(config.memory);
        let heap_len = (memory.size() / 4 * 3) & !(mte_sim::PAGE_SIZE - 1);
        let heap_start = memory.base();
        let native_start = heap_start + heap_len as u64;
        let native_len = memory.size() - heap_len;
        if config.prot_mte {
            memory
                .mprotect_mte(heap_start, heap_len, true)
                .expect("heap range lies inside the memory");
        }
        Heap {
            inner: Arc::new(HeapInner {
                blocks: BlockAllocator::new(heap_start, heap_len, config.alignment),
                native: NativeAllocator::new(Arc::clone(&memory), native_start, native_len),
                memory,
                config,
                objects: Mutex::new(HashMap::new()),
                allocated_total: AtomicU64::new(0),
                swept_total: AtomicU64::new(0),
                sweeps: AtomicU64::new(0),
                tag_rng: AtomicU64::new(0x2545_F491_4F6C_DD1D),
            }),
        }
    }

    /// The backing simulated memory.
    pub fn memory(&self) -> &Arc<TaggedMemory> {
        &self.inner.memory
    }

    /// The simulated native (`malloc`) allocator, used by the guarded-copy
    /// baseline for its shadow buffers.
    pub fn native_alloc(&self) -> &NativeAllocator {
        &self.inner.native
    }

    /// The active configuration.
    pub fn config(&self) -> HeapConfig {
        self.inner.config
    }

    // ------------------------------------------------------------------
    // Allocation
    // ------------------------------------------------------------------

    fn alloc_object(&self, kind: ObjKind, len: usize) -> Result<Arc<LiveToken>> {
        let byte_len = len * kind.element_type().size();
        let total = HEADER_SIZE + byte_len;
        let (addr, block_len) = self
            .inner
            .blocks
            .alloc(total)
            .ok_or(HeapError::OutOfMemory { requested: total })?;
        let mem = &self.inner.memory;
        // Header: class word, monitor word, length, padding.
        let header = TaggedPtr::from_addr(addr);
        let class_word = match kind {
            ObjKind::Array(t) => 0x1000 | t.descriptor() as u32,
            ObjKind::String => 0x2000,
        };
        let mut hdr = [0u8; HEADER_SIZE];
        hdr[0..4].copy_from_slice(&class_word.to_le_bytes());
        hdr[8..12].copy_from_slice(&(len as u32).to_le_bytes());
        mem.write_bytes_unchecked(header, &hdr)?;
        // Java zero-initializes payloads.
        mem.fill_unchecked(header.wrapping_add(HEADER_SIZE as u64), byte_len, 0)?;
        if self.inner.config.tag_on_alloc {
            let tag = self.next_alloc_tag();
            mem.set_tag_range(header, addr + block_len as u64, tag)?;
        }
        let token = Arc::new(LiveToken { addr, kind, len });
        self.inner.objects.lock().insert(
            addr,
            ObjectMeta {
                block_len,
                byte_len,
                live: Arc::downgrade(&token),
            },
        );
        self.inner.allocated_total.fetch_add(1, Ordering::Relaxed);
        Ok(token)
    }

    /// Generates a non-zero allocation tag (xorshift over the shared
    /// state; tag 0 is reserved for untagged memory).
    fn next_alloc_tag(&self) -> Tag {
        loop {
            let mut x = self.inner.tag_rng.load(Ordering::Relaxed);
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.inner.tag_rng.store(x, Ordering::Relaxed);
            let tag = Tag::from_low_bits((x.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 60) as u8);
            if !tag.is_untagged() {
                return tag;
            }
        }
    }

    /// Allocates a zero-filled primitive array.
    ///
    /// # Errors
    ///
    /// [`HeapError::OutOfMemory`] when the heap is exhausted.
    pub fn alloc_array(&self, ty: PrimitiveType, len: usize) -> Result<ArrayRef> {
        Ok(ArrayRef {
            token: self.alloc_object(ObjKind::Array(ty), len)?,
        })
    }

    /// Allocates a `java.lang.String` holding `s`.
    ///
    /// # Errors
    ///
    /// [`HeapError::OutOfMemory`] when the heap is exhausted.
    pub fn alloc_string(&self, s: &str) -> Result<StringRef> {
        self.alloc_string_from_units(&utf16_units(s))
    }

    /// Allocates a `java.lang.String` from raw UTF-16 code units — Java
    /// strings may hold unpaired surrogates that no Rust `&str` can.
    ///
    /// # Errors
    ///
    /// [`HeapError::OutOfMemory`] when the heap is exhausted.
    pub fn alloc_string_from_units(&self, units: &[u16]) -> Result<StringRef> {
        let token = self.alloc_object(ObjKind::String, units.len())?;
        let mut bytes = Vec::with_capacity(units.len() * 2);
        for u in units {
            bytes.extend_from_slice(&u.to_le_bytes());
        }
        self.inner.memory.write_bytes_unchecked(
            TaggedPtr::from_addr(token.addr + HEADER_SIZE as u64),
            &bytes,
        )?;
        Ok(StringRef { token })
    }

    /// Reads a string object back into a Rust `String` (managed-side read,
    /// like `String.toString()` inside the JVM).
    ///
    /// # Errors
    ///
    /// Propagates simulated memory errors; lossily maps unpaired
    /// surrogates like `String.valueOf` would not — this returns an error
    /// instead.
    pub fn read_string(&self, s: &StringRef) -> Result<String> {
        let mut bytes = vec![0u8; s.byte_len()];
        self.inner
            .memory
            .read_bytes_unchecked(TaggedPtr::from_addr(s.data_addr()), &mut bytes)?;
        let units: Vec<u16> = bytes
            .chunks_exact(2)
            .map(|c| u16::from_le_bytes([c[0], c[1]]))
            .collect();
        String::from_utf16(&units).map_err(|_| HeapError::InvalidUtf8 { offset: 0 })
    }

    // ------------------------------------------------------------------
    // Managed (JVM-side, bounds-checked) element access
    // ------------------------------------------------------------------

    fn elem_ptr(&self, a: &ArrayRef, expected: PrimitiveType, index: usize) -> Result<TaggedPtr> {
        let actual = a.element_type();
        if actual != expected {
            return Err(HeapError::TypeMismatch { expected, actual });
        }
        if index >= a.len() {
            return Err(HeapError::IndexOutOfBounds {
                index,
                length: a.len(),
            });
        }
        Ok(TaggedPtr::from_addr(
            a.data_addr() + (index * expected.size()) as u64,
        ))
    }

    /// Raw pointer to an object's payload — what the JNI layer tags and
    /// hands to native code. Untagged.
    pub fn data_ptr(&self, obj: &ObjectRef) -> TaggedPtr {
        TaggedPtr::from_addr(obj.data_addr())
    }

    // ------------------------------------------------------------------
    // Runtime-internal bulk access (no tag checks; TCO-set equivalent)
    // ------------------------------------------------------------------

    /// Reads an object's entire payload without tag checks (runtime
    /// internal, e.g. guarded copy's copy-out).
    ///
    /// # Errors
    ///
    /// Propagates [`HeapError::Mem`] range errors.
    pub fn read_payload(&self, obj: &ObjectRef, buf: &mut [u8]) -> Result<()> {
        debug_assert_eq!(buf.len(), obj.byte_len());
        self.inner
            .memory
            .read_bytes_unchecked(TaggedPtr::from_addr(obj.data_addr()), buf)?;
        Ok(())
    }

    /// Overwrites an object's entire payload without tag checks (runtime
    /// internal, e.g. guarded copy's copy-back).
    ///
    /// # Errors
    ///
    /// Propagates [`HeapError::Mem`] range errors.
    pub fn write_payload(&self, obj: &ObjectRef, buf: &[u8]) -> Result<()> {
        debug_assert_eq!(buf.len(), obj.byte_len());
        self.inner
            .memory
            .write_bytes_unchecked(TaggedPtr::from_addr(obj.data_addr()), buf)?;
        Ok(())
    }

    // ------------------------------------------------------------------
    // GC
    // ------------------------------------------------------------------

    /// Sweeps dead objects (those with no live handles), returning their
    /// blocks to the allocator and clearing their memory tags so a stale
    /// tag can never alias a future allocation.
    pub fn sweep(&self) -> GcStats {
        let mut objects = self.inner.objects.lock();
        let dead: Vec<(u64, usize)> = objects
            .iter()
            .filter(|(_, m)| m.live.strong_count() == 0)
            .map(|(&addr, m)| (addr, m.block_len))
            .collect();
        let mut bytes = 0usize;
        for &(addr, block_len) in &dead {
            objects.remove(&addr);
            if self.inner.config.prot_mte {
                let p = TaggedPtr::from_addr(addr);
                self.inner
                    .memory
                    .set_tag_range(p, addr + block_len as u64, Tag::UNTAGGED)
                    .expect("heap blocks are PROT_MTE");
            }
            self.inner.blocks.free(addr, block_len);
            bytes += block_len;
        }
        let live = objects.len();
        drop(objects);
        self.inner.swept_total.fetch_add(dead.len() as u64, Ordering::Relaxed);
        self.inner.sweeps.fetch_add(1, Ordering::Relaxed);
        GcStats {
            swept: dead.len(),
            bytes_freed: bytes,
            live,
        }
    }

    /// Scans every live object's memory — header and payload — through
    /// `scanner`, using **untagged** pointers, exactly like a GC marking
    /// thread that never went through a JNI tagging interface.
    ///
    /// With MTE4JNI's thread-level control the scanner has `TCO` set and
    /// the scan is silent; a naively process-wide MTE enablement makes
    /// this scan fault on every object currently tagged for native code
    /// (paper §3.3).
    pub fn scan_live(&self, scanner: &MteThread) -> ScanOutcome {
        let tokens: Vec<(u64, usize)> = {
            let objects = self.inner.objects.lock();
            objects
                .iter()
                .filter(|(_, m)| m.live.strong_count() > 0)
                .map(|(&addr, m)| (addr, HEADER_SIZE + m.byte_len))
                .collect()
        };
        let mut outcome = ScanOutcome::default();
        let mut buf = Vec::new();
        for (addr, len) in tokens {
            buf.resize(len, 0);
            let ptr = TaggedPtr::from_addr(addr); // untagged, like a GC root
            match self.inner.memory.read_bytes(scanner, ptr, &mut buf) {
                Ok(()) => {}
                Err(mte_sim::MemError::TagCheck(fault)) => outcome.faults.push(*fault),
                Err(_) => unreachable!("live objects lie inside the heap"),
            }
            outcome.objects += 1;
            outcome.bytes += len;
        }
        // Async-mode scanners latch instead of failing; surface it here the
        // way the kernel would at the scanner's next syscall.
        if let Err(fault) = scanner.syscall("madvise") {
            outcome.faults.push(fault);
        }
        outcome
    }

    /// Number of live (handle-reachable) objects.
    pub fn live_count(&self) -> usize {
        self.inner
            .objects
            .lock()
            .values()
            .filter(|m| m.live.strong_count() > 0)
            .count()
    }

    /// Aggregate heap statistics.
    pub fn stats(&self) -> HeapStats {
        HeapStats {
            live_objects: self.live_count(),
            bytes_in_use: self.inner.blocks.bytes_in_use(),
            fragmentation_bytes: self.inner.blocks.fragmentation_bytes(),
            allocated_total: self.inner.allocated_total.load(Ordering::Relaxed),
            swept_total: self.inner.swept_total.load(Ordering::Relaxed),
            sweeps: self.inner.sweeps.load(Ordering::Relaxed),
        }
    }
}

impl fmt::Debug for Heap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Heap")
            .field("config", &self.inner.config)
            .field("stats", &self.stats())
            .finish()
    }
}

/// Result of one [`Heap::sweep`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GcStats {
    /// Objects collected.
    pub swept: usize,
    /// Block bytes returned to the allocator.
    pub bytes_freed: usize,
    /// Objects still live after the sweep.
    pub live: usize,
}

/// Result of one [`Heap::scan_live`].
#[derive(Clone, Debug, Default)]
pub struct ScanOutcome {
    /// Objects scanned.
    pub objects: usize,
    /// Bytes read.
    pub bytes: usize,
    /// Tag-check faults the scanner hit (empty for a correctly configured
    /// runtime thread).
    pub faults: Vec<TagCheckFault>,
}

/// Point-in-time heap statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HeapStats {
    /// Objects with live handles.
    pub live_objects: usize,
    /// Bytes currently held by object blocks.
    pub bytes_in_use: u64,
    /// Cumulative internal fragmentation from alignment rounding.
    pub fragmentation_bytes: u64,
    /// Objects ever allocated.
    pub allocated_total: u64,
    /// Objects ever swept.
    pub swept_total: u64,
    /// Sweep cycles run.
    pub sweeps: u64,
}

macro_rules! element_accessors {
    (
        $prim:expr, $rust:ty,
        $alloc:ident, $alloc_from:ident, $at:ident, $set_at:ident, $as_vec:ident,
        $load:ident, $store:ident, $decode:expr, $encode:expr
    ) => {
        impl Heap {
            #[doc = concat!("Allocates a zero-filled `", stringify!($prim), "` array.")]
            ///
            /// # Errors
            ///
            /// [`HeapError::OutOfMemory`] when the heap is exhausted.
            pub fn $alloc(&self, len: usize) -> Result<ArrayRef> {
                self.alloc_array($prim, len)
            }

            /// Allocates an array initialized from `values`.
            ///
            /// # Errors
            ///
            /// [`HeapError::OutOfMemory`] when the heap is exhausted.
            pub fn $alloc_from(&self, values: &[$rust]) -> Result<ArrayRef> {
                let a = self.alloc_array($prim, values.len())?;
                let mut bytes = Vec::with_capacity(a.byte_len());
                for &v in values {
                    let enc = $encode(v);
                    bytes.extend_from_slice(&enc.to_le_bytes());
                }
                self.inner
                    .memory
                    .write_bytes_unchecked(TaggedPtr::from_addr(a.data_addr()), &bytes)?;
                Ok(a)
            }

            /// Managed (bounds- and type-checked) element read — the JVM's
            /// own safe path.
            ///
            /// # Errors
            ///
            /// [`HeapError::IndexOutOfBounds`] or [`HeapError::TypeMismatch`]
            /// on a bad access; [`HeapError::Mem`] on memory errors.
            pub fn $at(&self, t: &JavaThread, a: &ArrayRef, index: usize) -> Result<$rust> {
                let p = self.elem_ptr(a, $prim, index)?;
                let raw = self.inner.memory.$load(t.mte(), p)?;
                Ok($decode(raw))
            }

            /// Managed (bounds- and type-checked) element write.
            ///
            /// # Errors
            ///
            /// See the corresponding read accessor.
            pub fn $set_at(
                &self,
                t: &JavaThread,
                a: &ArrayRef,
                index: usize,
                value: $rust,
            ) -> Result<()> {
                let p = self.elem_ptr(a, $prim, index)?;
                self.inner.memory.$store(t.mte(), p, $encode(value))?;
                Ok(())
            }

            /// Copies the whole array out through the managed path.
            ///
            /// # Errors
            ///
            /// [`HeapError::TypeMismatch`] for the wrong element type;
            /// [`HeapError::Mem`] on memory errors.
            pub fn $as_vec(&self, t: &JavaThread, a: &ArrayRef) -> Result<Vec<$rust>> {
                let mut out = Vec::with_capacity(a.len());
                for i in 0..a.len() {
                    out.push(self.$at(t, a, i)?);
                }
                Ok(out)
            }
        }
    };
}

element_accessors!(
    PrimitiveType::Boolean, bool,
    alloc_boolean_array, alloc_boolean_array_from, boolean_at, set_boolean_at, boolean_array_as_vec,
    load_u8, store_u8, |raw: u8| raw != 0, |v: bool| u8::from(v)
);
element_accessors!(
    PrimitiveType::Byte, i8,
    alloc_byte_array, alloc_byte_array_from, byte_at, set_byte_at, byte_array_as_vec,
    load_u8, store_u8, |raw: u8| raw as i8, |v: i8| v as u8
);
element_accessors!(
    PrimitiveType::Char, u16,
    alloc_char_array, alloc_char_array_from, char_at, set_char_at, char_array_as_vec,
    load_u16, store_u16, |raw: u16| raw, |v: u16| v
);
element_accessors!(
    PrimitiveType::Short, i16,
    alloc_short_array, alloc_short_array_from, short_at, set_short_at, short_array_as_vec,
    load_u16, store_u16, |raw: u16| raw as i16, |v: i16| v as u16
);
element_accessors!(
    PrimitiveType::Int, i32,
    alloc_int_array, alloc_int_array_from, int_at, set_int_at, int_array_as_vec,
    load_u32, store_u32, |raw: u32| raw as i32, |v: i32| v as u32
);
element_accessors!(
    PrimitiveType::Long, i64,
    alloc_long_array, alloc_long_array_from, long_at, set_long_at, long_array_as_vec,
    load_u64, store_u64, |raw: u64| raw as i64, |v: i64| v as u64
);
element_accessors!(
    PrimitiveType::Float, f32,
    alloc_float_array, alloc_float_array_from, float_at, set_float_at, float_array_as_vec,
    load_u32, store_u32, f32::from_bits, |v: f32| v.to_bits()
);
element_accessors!(
    PrimitiveType::Double, f64,
    alloc_double_array, alloc_double_array_from, double_at, set_double_at, double_array_as_vec,
    load_u64, store_u64, f64::from_bits, |v: f64| v.to_bits()
);

#[cfg(test)]
mod tests {
    use super::*;

    fn heap() -> Heap {
        Heap::new(HeapConfig::default())
    }

    #[test]
    fn int_array_round_trip() {
        let h = heap();
        let t = JavaThread::new("main");
        let a = h.alloc_int_array_from(&[-1, 0, i32::MAX, i32::MIN]).unwrap();
        assert_eq!(h.int_array_as_vec(&t, &a).unwrap(), vec![-1, 0, i32::MAX, i32::MIN]);
        h.set_int_at(&t, &a, 1, 77).unwrap();
        assert_eq!(h.int_at(&t, &a, 1).unwrap(), 77);
    }

    #[test]
    fn all_types_round_trip() {
        let h = heap();
        let t = JavaThread::new("main");
        let b = h.alloc_boolean_array_from(&[true, false, true]).unwrap();
        assert_eq!(h.boolean_array_as_vec(&t, &b).unwrap(), vec![true, false, true]);
        let y = h.alloc_byte_array_from(&[-128, 127]).unwrap();
        assert_eq!(h.byte_array_as_vec(&t, &y).unwrap(), vec![-128, 127]);
        let c = h.alloc_char_array_from(&[0x0041, 0xFFFF]).unwrap();
        assert_eq!(h.char_array_as_vec(&t, &c).unwrap(), vec![0x0041, 0xFFFF]);
        let s = h.alloc_short_array_from(&[-5, 5]).unwrap();
        assert_eq!(h.short_array_as_vec(&t, &s).unwrap(), vec![-5, 5]);
        let l = h.alloc_long_array_from(&[i64::MIN, i64::MAX]).unwrap();
        assert_eq!(h.long_array_as_vec(&t, &l).unwrap(), vec![i64::MIN, i64::MAX]);
        let f = h.alloc_float_array_from(&[1.5, -0.0]).unwrap();
        assert_eq!(h.float_array_as_vec(&t, &f).unwrap(), vec![1.5, -0.0]);
        let d = h.alloc_double_array_from(&[std::f64::consts::PI]).unwrap();
        assert_eq!(h.double_array_as_vec(&t, &d).unwrap(), vec![std::f64::consts::PI]);
    }

    #[test]
    fn fresh_arrays_are_zeroed() {
        let h = heap();
        let t = JavaThread::new("main");
        let a = h.alloc_int_array(16).unwrap();
        assert_eq!(h.int_array_as_vec(&t, &a).unwrap(), vec![0; 16]);
    }

    #[test]
    fn managed_access_bounds_checked() {
        let h = heap();
        let t = JavaThread::new("main");
        let a = h.alloc_int_array(18).unwrap();
        // The JVM catches what native code would not: index 21 of 18.
        assert_eq!(
            h.int_at(&t, &a, 21),
            Err(HeapError::IndexOutOfBounds { index: 21, length: 18 })
        );
        assert!(h.set_int_at(&t, &a, 18, 1).is_err());
        assert!(h.set_int_at(&t, &a, 17, 1).is_ok());
    }

    #[test]
    fn managed_access_type_checked() {
        let h = heap();
        let t = JavaThread::new("main");
        let a = h.alloc_byte_array(4).unwrap();
        assert!(matches!(
            h.int_at(&t, &a, 0),
            Err(HeapError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn alignment_respects_config() {
        for align in [8usize, 16] {
            let h = Heap::new(HeapConfig {
                alignment: align,
                ..HeapConfig::default()
            });
            for len in [1usize, 3, 7, 18] {
                let a = h.alloc_int_array(len).unwrap();
                assert_eq!(a.addr() % align as u64, 0, "align {align} len {len}");
            }
        }
    }

    #[test]
    fn string_round_trip() {
        let h = heap();
        let s = h.alloc_string("Hello, 世界 😀").unwrap();
        assert_eq!(h.read_string(&s).unwrap(), "Hello, 世界 😀");
        assert_eq!(s.len(), "Hello, 世界 😀".encode_utf16().count());
    }

    #[test]
    fn sweep_collects_only_dead_objects() {
        let h = heap();
        let keep = h.alloc_int_array(8).unwrap();
        {
            let _drop_me = h.alloc_int_array(8).unwrap();
        }
        let stats = h.sweep();
        assert_eq!(stats.swept, 1);
        assert_eq!(stats.live, 1);
        assert_eq!(h.live_count(), 1);
        drop(keep);
        assert_eq!(h.sweep().swept, 1);
        assert_eq!(h.live_count(), 0);
    }

    #[test]
    fn sweep_allows_address_reuse() {
        let h = heap();
        let addr = {
            let a = h.alloc_int_array(64).unwrap();
            a.addr()
        };
        h.sweep();
        let b = h.alloc_int_array(64).unwrap();
        assert_eq!(b.addr(), addr, "freed block reused first-fit");
    }

    #[test]
    fn sweep_clears_stale_tags() {
        let h = heap();
        let (addr, end) = {
            let a = h.alloc_int_array(8).unwrap();
            let p = TaggedPtr::from_addr(a.addr());
            h.memory()
                .set_tag_range(p, a.addr() + 48, Tag::new(0xD).unwrap())
                .unwrap();
            (a.addr(), a.addr() + 48)
        };
        h.sweep();
        let mut a = addr;
        while a < end {
            assert_eq!(h.memory().raw_tag_at(a).unwrap(), Tag::UNTAGGED);
            a += 16;
        }
    }

    #[test]
    fn scan_live_reads_everything_quietly_for_runtime_threads() {
        let h = heap();
        let _a = h.alloc_int_array(100).unwrap();
        let _b = h.alloc_string("gc test").unwrap();
        let scanner = MteThread::new("HeapTaskDaemon"); // TCO set by default
        let outcome = h.scan_live(&scanner);
        assert_eq!(outcome.objects, 2);
        assert!(outcome.faults.is_empty());
        assert!(outcome.bytes >= 100 * 4 + HEADER_SIZE);
    }

    #[test]
    fn out_of_memory_is_reported() {
        let h = Heap::new(HeapConfig {
            memory: MemoryConfig {
                base: 0x7a00_0000_0000,
                size: 64 << 10,
            },
            ..HeapConfig::default()
        });
        // Heap region is 48 KiB; this cannot fit.
        assert!(matches!(
            h.alloc_byte_array(1 << 20),
            Err(HeapError::OutOfMemory { .. })
        ));
    }

    #[test]
    fn data_starts_after_header_on_granule_boundary() {
        let h = heap();
        let a = h.alloc_int_array(4).unwrap();
        assert_eq!(a.data_addr(), a.addr() + 16);
        assert_eq!(a.data_addr() % 16, 0);
    }

    #[test]
    fn stats_track_allocation_lifecycle() {
        let h = heap();
        let _a = h.alloc_int_array(10).unwrap();
        {
            let _b = h.alloc_int_array(10).unwrap();
        }
        h.sweep();
        let s = h.stats();
        assert_eq!(s.allocated_total, 2);
        assert_eq!(s.swept_total, 1);
        assert_eq!(s.live_objects, 1);
        assert_eq!(s.sweeps, 1);
        assert!(s.bytes_in_use >= 56);
    }
}

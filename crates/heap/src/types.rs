//! Java primitive types as seen by the JNI array interfaces.

use std::fmt;

/// The eight Java primitive element types (paper Table 1's `*` wildcard,
/// plus `boolean`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PrimitiveType {
    /// `jboolean` — 1 byte.
    Boolean,
    /// `jbyte` — 1 byte.
    Byte,
    /// `jchar` — 2 bytes (UTF-16 code unit).
    Char,
    /// `jshort` — 2 bytes.
    Short,
    /// `jint` — 4 bytes.
    Int,
    /// `jlong` — 8 bytes.
    Long,
    /// `jfloat` — 4 bytes.
    Float,
    /// `jdouble` — 8 bytes.
    Double,
}

impl PrimitiveType {
    /// All primitive types, in JVM descriptor order.
    pub const ALL: [PrimitiveType; 8] = [
        PrimitiveType::Boolean,
        PrimitiveType::Byte,
        PrimitiveType::Char,
        PrimitiveType::Short,
        PrimitiveType::Int,
        PrimitiveType::Long,
        PrimitiveType::Float,
        PrimitiveType::Double,
    ];

    /// Element size in bytes.
    pub fn size(self) -> usize {
        match self {
            PrimitiveType::Boolean | PrimitiveType::Byte => 1,
            PrimitiveType::Char | PrimitiveType::Short => 2,
            PrimitiveType::Int | PrimitiveType::Float => 4,
            PrimitiveType::Long | PrimitiveType::Double => 8,
        }
    }

    /// The JVM type descriptor character (`I` for `int`, …).
    pub fn descriptor(self) -> char {
        match self {
            PrimitiveType::Boolean => 'Z',
            PrimitiveType::Byte => 'B',
            PrimitiveType::Char => 'C',
            PrimitiveType::Short => 'S',
            PrimitiveType::Int => 'I',
            PrimitiveType::Long => 'J',
            PrimitiveType::Float => 'F',
            PrimitiveType::Double => 'D',
        }
    }
}

impl fmt::Display for PrimitiveType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PrimitiveType::Boolean => "boolean",
            PrimitiveType::Byte => "byte",
            PrimitiveType::Char => "char",
            PrimitiveType::Short => "short",
            PrimitiveType::Int => "int",
            PrimitiveType::Long => "long",
            PrimitiveType::Float => "float",
            PrimitiveType::Double => "double",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_match_jvm_spec() {
        assert_eq!(PrimitiveType::Boolean.size(), 1);
        assert_eq!(PrimitiveType::Byte.size(), 1);
        assert_eq!(PrimitiveType::Char.size(), 2);
        assert_eq!(PrimitiveType::Short.size(), 2);
        assert_eq!(PrimitiveType::Int.size(), 4);
        assert_eq!(PrimitiveType::Float.size(), 4);
        assert_eq!(PrimitiveType::Long.size(), 8);
        assert_eq!(PrimitiveType::Double.size(), 8);
    }

    #[test]
    fn descriptors_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for t in PrimitiveType::ALL {
            assert!(seen.insert(t.descriptor()), "duplicate descriptor for {t}");
        }
    }

    #[test]
    fn display_names_are_java_keywords() {
        assert_eq!(PrimitiveType::Int.to_string(), "int");
        assert_eq!(PrimitiveType::Double.to_string(), "double");
    }
}

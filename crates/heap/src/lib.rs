//! A simulated ART-style Java heap on top of the [`mte_sim`] tagged memory.
//!
//! This crate is the runtime substrate the MTE4JNI paper modifies. It
//! provides:
//!
//! * a [`Heap`] with free-list allocation at a configurable alignment —
//!   8 bytes (stock ART) or 16 bytes (the paper's §4.1 change that makes
//!   object boundaries coincide with MTE granules) — and optional
//!   `PROT_MTE` mapping of the heap pages,
//! * a Java **object model**: primitive arrays ([`ArrayRef`]) and strings
//!   ([`StringRef`]) with 16-byte headers, bounds-checked managed accessors
//!   (the JVM's own safety checks), and raw data pointers for the JNI layer
//!   to hand to native code,
//! * **modified UTF-8** encoding/decoding as used by `GetStringUTFChars`,
//! * [`JavaThread`]s with managed↔native state transitions carrying an
//!   [`mte_sim::MteThread`], and
//! * a **GC scanner** ([`GcScanner`], [`Heap::sweep`]) that walks live
//!   objects with *untagged* pointers — the concurrent runtime accessor
//!   that makes thread-level MTE control necessary (paper §3.3).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod block_alloc;
mod error;
mod gc;
mod heap;
mod jstring;
mod object;
mod pin;
mod thread;
mod types;
mod world;

pub use block_alloc::BlockAllocator;
pub use error::HeapError;
pub use gc::{GcReport, GcScanner, GcScannerConfig, GcStats, ScanOutcome};
pub use heap::{
    CompactStats, Heap, HeapConfig, HeapStats, RelocationHook, Safepoint, SafepointHook,
    SafepointPhase, HEADER_SIZE,
};
pub use jstring::{decode_modified_utf8, encode_modified_utf8, utf16_units, Utf8Error};
pub use object::{ArrayRef, ObjKind, ObjectRef, StringRef};
pub use thread::{JavaThread, ThreadState};
pub use types::PrimitiveType;

/// Convenience alias for results whose error type is [`HeapError`].
pub type Result<T> = std::result::Result<T, HeapError>;

//! Java threads and their managed↔native state.

use std::cell::Cell;
use std::fmt;

use mte_sim::{MteThread, TcfMode};

/// The two thread states relevant to JNI transitions.
///
/// Real ART has a richer state machine (`kRunnable`, `kNative`,
/// `kSuspended`, …); the trampoline logic the paper modifies only cares
/// about the managed↔native edge, so only that edge is modelled.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum ThreadState {
    /// Executing managed (Java) code; heap accesses go through JVM checks.
    #[default]
    Managed,
    /// Executing native code behind a JNI call.
    Native,
}

impl fmt::Display for ThreadState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ThreadState::Managed => f.write_str("managed"),
            ThreadState::Native => f.write_str("native"),
        }
    }
}

/// A simulated Java application thread.
///
/// Owns the per-thread MTE state; the JNI trampolines flip the `TCO`
/// register around native code sections so tag checking is scoped to
/// exactly the code that holds JNI raw pointers (paper §3.3).
pub struct JavaThread {
    mte: MteThread,
    state: Cell<ThreadState>,
}

impl JavaThread {
    /// Creates a thread in the managed state with tag checking fully
    /// disabled (no process-level MTE).
    pub fn new(name: impl Into<std::sync::Arc<str>>) -> JavaThread {
        JavaThread {
            mte: MteThread::new(name),
            state: Cell::new(ThreadState::Managed),
        }
    }

    /// Creates a thread whose process has MTE enabled in `mode` (the
    /// `prctl(PR_SET_TAGGED_ADDR_CTRL)` analogue). The thread still starts
    /// managed, with `TCO` set, so no checks fire until a trampoline
    /// clears `TCO`.
    pub fn with_mode(name: impl Into<std::sync::Arc<str>>, mode: TcfMode) -> JavaThread {
        let t = JavaThread::new(name);
        t.mte.set_mode(mode);
        t
    }

    /// The thread's name.
    pub fn name(&self) -> &str {
        self.mte.name()
    }

    /// The per-thread MTE state.
    pub fn mte(&self) -> &MteThread {
        &self.mte
    }

    /// Current state.
    pub fn state(&self) -> ThreadState {
        self.state.get()
    }

    /// Transitions into native code (called by trampolines on JNI entry).
    pub fn transition_to_native(&self) {
        self.state.set(ThreadState::Native);
    }

    /// Transitions back to managed code (called by trampolines on return).
    pub fn transition_to_managed(&self) {
        self.state.set(ThreadState::Managed);
    }
}

impl fmt::Debug for JavaThread {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JavaThread")
            .field("name", &self.name())
            .field("state", &self.state.get())
            .field("mode", &self.mte.mode())
            .field("tco", &self.mte.tco())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_managed_with_checks_off() {
        let t = JavaThread::new("main");
        assert_eq!(t.state(), ThreadState::Managed);
        assert!(!t.mte().checks_enabled());
    }

    #[test]
    fn with_mode_sets_process_mode_but_not_tco() {
        let t = JavaThread::with_mode("main", TcfMode::Sync);
        assert_eq!(t.mte().mode(), TcfMode::Sync);
        assert!(t.mte().tco(), "TCO stays set until a trampoline clears it");
        assert!(!t.mte().checks_enabled());
    }

    #[test]
    fn transitions_flip_state() {
        let t = JavaThread::new("worker");
        t.transition_to_native();
        assert_eq!(t.state(), ThreadState::Native);
        t.transition_to_managed();
        assert_eq!(t.state(), ThreadState::Managed);
    }

    #[test]
    fn state_display() {
        assert_eq!(ThreadState::Managed.to_string(), "managed");
        assert_eq!(ThreadState::Native.to_string(), "native");
    }
}

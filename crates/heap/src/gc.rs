//! A background GC scanner thread.
//!
//! The scanner periodically walks every live object with untagged pointers
//! (marking) and then sweeps dead objects. It is the concurrent runtime
//! accessor from the paper's §3.3 challenge: if MTE checking were enabled
//! process-wide, this thread would fault on every object currently tagged
//! for a native-code borrower, even though its accesses are perfectly
//! in-bounds.
//!
//! With [`GcScannerConfig::compact`] set, each cycle runs the mark–compact
//! collector instead of the plain sweep — relocating unpinned live objects,
//! migrating tags, and reporting move totals — the way ART's
//! `HeapTaskDaemon` runs background compaction.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;

use mte_sim::{MteThread, TagCheckFault, TcfMode};

use crate::heap::Heap;

pub use crate::heap::{GcStats, ScanOutcome};

/// Faults retained at each end of the bounded log.
const FAULT_SAMPLE: usize = 16;

/// Bounded fault history: the first and last [`FAULT_SAMPLE`] faults plus
/// a total counter. A long-running misconfigured scanner faults on every
/// tagged object every cycle; an unbounded `Vec` would grow forever.
#[derive(Default)]
struct FaultLog {
    first: Vec<TagCheckFault>,
    last: VecDeque<TagCheckFault>,
    total: u64,
}

impl FaultLog {
    fn push(&mut self, fault: TagCheckFault) {
        self.total += 1;
        if self.first.len() < FAULT_SAMPLE {
            self.first.push(fault);
        } else {
            if self.last.len() == FAULT_SAMPLE {
                self.last.pop_front();
            }
            self.last.push_back(fault);
        }
    }

    fn sample(&self) -> Vec<TagCheckFault> {
        self.first.iter().chain(self.last.iter()).cloned().collect()
    }
}

/// Configuration for a [`GcScanner`].
#[derive(Clone, Debug)]
pub struct GcScannerConfig {
    /// Pause between scan+sweep cycles.
    pub interval: Duration,
    /// The process-wide check mode the scanner inherits.
    pub mode: TcfMode,
    /// Whether the runtime sets `TCO` on this thread. MTE4JNI keeps it
    /// `true` (checks suppressed); setting `false` models the naive
    /// process-wide enablement that the paper shows is unworkable.
    pub tco: bool,
    /// Run the compacting collector each cycle instead of a plain sweep.
    pub compact: bool,
    /// Thread name (ART calls its GC thread `HeapTaskDaemon`).
    pub name: String,
}

impl Default for GcScannerConfig {
    fn default() -> Self {
        GcScannerConfig {
            interval: Duration::from_millis(1),
            mode: TcfMode::None,
            tco: true,
            compact: false,
            name: "HeapTaskDaemon".to_owned(),
        }
    }
}

/// A running background GC scanner. Stop it with [`GcScanner::stop`];
/// dropping it also stops it.
pub struct GcScanner {
    stop: Arc<AtomicBool>,
    cycles: Arc<AtomicU64>,
    faults: Arc<Mutex<FaultLog>>,
    scan_errors: Arc<AtomicU64>,
    compactions: Arc<AtomicU64>,
    moved_objects: Arc<AtomicU64>,
    moved_bytes: Arc<AtomicU64>,
    handle: Option<JoinHandle<()>>,
}

impl GcScanner {
    /// Spawns the scanner over `heap`.
    pub fn start(heap: &Heap, config: GcScannerConfig) -> GcScanner {
        let stop = Arc::new(AtomicBool::new(false));
        let cycles = Arc::new(AtomicU64::new(0));
        let faults: Arc<Mutex<FaultLog>> = Arc::new(Mutex::new(FaultLog::default()));
        let scan_errors = Arc::new(AtomicU64::new(0));
        let compactions = Arc::new(AtomicU64::new(0));
        let moved_objects = Arc::new(AtomicU64::new(0));
        let moved_bytes = Arc::new(AtomicU64::new(0));
        let heap = heap.clone();
        let handle = {
            let stop = Arc::clone(&stop);
            let cycles = Arc::clone(&cycles);
            let faults = Arc::clone(&faults);
            let scan_errors = Arc::clone(&scan_errors);
            let compactions = Arc::clone(&compactions);
            let moved_objects = Arc::clone(&moved_objects);
            let moved_bytes = Arc::clone(&moved_bytes);
            std::thread::Builder::new()
                .name(config.name.clone())
                .spawn(move || {
                    let mte = MteThread::new(config.name.as_str());
                    mte.set_mode(config.mode);
                    mte.set_tco(config.tco);
                    while !stop.load(Ordering::Relaxed) {
                        let outcome = heap.scan_live(&mte);
                        telemetry::record_rare(|| telemetry::Event::GcScan {
                            objects: u32::try_from(outcome.objects).unwrap_or(u32::MAX),
                        });
                        if !outcome.faults.is_empty() {
                            let mut log = faults.lock();
                            for fault in outcome.faults {
                                log.push(fault);
                            }
                        }
                        scan_errors.fetch_add(outcome.errors.len() as u64, Ordering::Relaxed);
                        if config.compact {
                            let cs = heap.compact();
                            compactions.fetch_add(1, Ordering::Relaxed);
                            moved_objects.fetch_add(cs.moved_objects as u64, Ordering::Relaxed);
                            moved_bytes.fetch_add(cs.moved_bytes as u64, Ordering::Relaxed);
                        } else {
                            heap.sweep();
                        }
                        cycles.fetch_add(1, Ordering::Relaxed);
                        std::thread::sleep(config.interval);
                    }
                })
                .expect("spawning the GC scanner thread")
        };
        GcScanner {
            stop,
            cycles,
            faults,
            scan_errors,
            compactions,
            moved_objects,
            moved_bytes,
            handle: Some(handle),
        }
    }

    /// Completed scan+sweep cycles so far.
    pub fn cycles(&self) -> u64 {
        self.cycles.load(Ordering::Relaxed)
    }

    /// Total tag-check faults the scanner has hit so far (the retained
    /// sample is bounded; this counter is not).
    pub fn fault_count(&self) -> u64 {
        self.faults.lock().total
    }

    /// Stops the scanner and returns its report.
    pub fn stop(mut self) -> GcReport {
        self.shutdown()
    }

    fn shutdown(&mut self) -> GcReport {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
        let log = self.faults.lock();
        GcReport {
            cycles: self.cycles.load(Ordering::Relaxed),
            faults: log.sample(),
            fault_count: log.total,
            scan_errors: self.scan_errors.load(Ordering::Relaxed),
            compactions: self.compactions.load(Ordering::Relaxed),
            moved_objects: self.moved_objects.load(Ordering::Relaxed),
            moved_bytes: self.moved_bytes.load(Ordering::Relaxed),
        }
    }
}

impl Drop for GcScanner {
    fn drop(&mut self) {
        if self.handle.is_some() {
            self.shutdown();
        }
    }
}

impl fmt::Debug for GcScanner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GcScanner")
            .field("cycles", &self.cycles())
            .field("faults", &self.fault_count())
            .finish()
    }
}

/// Final report from a stopped [`GcScanner`].
#[derive(Clone, Debug, Default)]
pub struct GcReport {
    /// Scan+sweep cycles completed.
    pub cycles: u64,
    /// Bounded fault sample: the first and last [`FAULT_SAMPLE`]
    /// tag-check faults encountered.
    pub faults: Vec<TagCheckFault>,
    /// Total tag-check faults encountered (≥ `faults.len()`).
    pub fault_count: u64,
    /// Non-tag-check scan errors encountered.
    pub scan_errors: u64,
    /// Compaction passes run (compact mode only).
    pub compactions: u64,
    /// Objects relocated by those passes.
    pub moved_objects: u64,
    /// Block bytes relocated by those passes.
    pub moved_bytes: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heap::HeapConfig;
    use mte_sim::{Tag, TaggedPtr};

    #[test]
    fn scanner_collects_garbage_in_background() {
        let heap = Heap::new(HeapConfig::default());
        let scanner = GcScanner::start(&heap, GcScannerConfig::default());
        for _ in 0..50 {
            let _garbage = heap.alloc_int_array(32).unwrap();
        }
        // Wait for at least one full cycle after the garbage was created.
        let target = scanner.cycles() + 2;
        while scanner.cycles() < target {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(heap.live_count(), 0);
        let report = scanner.stop();
        assert!(report.cycles >= 2);
        assert!(report.faults.is_empty(), "TCO-respecting scanner never faults");
        assert_eq!(report.fault_count, 0);
        assert_eq!(report.scan_errors, 0);
    }

    #[test]
    fn naive_process_wide_mte_makes_the_scanner_fault() {
        let heap = Heap::new(HeapConfig::default());
        // A native borrower tagged this object (simulated directly here).
        let a = heap.alloc_int_array(64).unwrap();
        let tag = Tag::new(0xB).unwrap();
        heap.memory()
            .set_tag_range(
                TaggedPtr::from_addr(a.addr()),
                a.data_addr() + a.byte_len() as u64,
                tag,
            )
            .unwrap();
        let scanner = GcScanner::start(
            &heap,
            GcScannerConfig {
                mode: TcfMode::Sync,
                tco: false, // the naive configuration
                interval: Duration::from_micros(100),
                ..GcScannerConfig::default()
            },
        );
        while scanner.cycles() < 3 {
            std::thread::sleep(Duration::from_millis(1));
        }
        let report = scanner.stop();
        assert!(
            !report.faults.is_empty(),
            "in-bounds GC reads fault when checking is process wide"
        );
        assert!(report.fault_count >= report.faults.len() as u64);
        drop(a);
    }

    #[test]
    fn fault_log_is_bounded_but_counts_everything() {
        let template = sample_fault();
        let mut log = FaultLog::default();
        for i in 0..1000u64 {
            log.push(TagCheckFault {
                pointer: TaggedPtr::from_addr(0x7a00_0000_0000 + i * 16),
                ..template.clone()
            });
        }
        assert_eq!(log.total, 1000);
        let sample = log.sample();
        assert_eq!(sample.len(), 2 * FAULT_SAMPLE, "first 16 + last 16");
        assert_eq!(
            sample[0].pointer.addr(),
            0x7a00_0000_0000,
            "oldest fault retained"
        );
        assert_eq!(
            sample.last().unwrap().pointer.addr(),
            0x7a00_0000_0000 + 999 * 16,
            "newest fault retained"
        );
    }

    fn sample_fault() -> TagCheckFault {
        let heap = Heap::new(HeapConfig::default());
        let a = heap.alloc_int_array(4).unwrap();
        heap.memory()
            .set_tag_range(
                TaggedPtr::from_addr(a.addr()),
                a.data_addr() + a.byte_len() as u64,
                Tag::new(0x3).unwrap(),
            )
            .unwrap();
        let mte = MteThread::new("fault-sampler");
        mte.set_mode(TcfMode::Sync);
        mte.set_tco(false);
        let outcome = heap.scan_live(&mte);
        outcome.faults.into_iter().next().expect("tagged scan faults")
    }

    #[test]
    fn compacting_scanner_defragments_without_faulting() {
        let heap = Heap::new(HeapConfig::default());
        let mut survivors = Vec::new();
        for i in 0..16i32 {
            let _garbage = heap.alloc_int_array(32).unwrap();
            survivors.push(heap.alloc_int_array_from(&[i; 8]).unwrap());
        }
        let scanner = GcScanner::start(
            &heap,
            GcScannerConfig {
                compact: true,
                ..GcScannerConfig::default()
            },
        );
        let target = scanner.cycles() + 3;
        while scanner.cycles() < target {
            std::thread::sleep(Duration::from_millis(1));
        }
        let report = scanner.stop();
        assert!(report.compactions >= 3);
        assert!(report.moved_objects >= 1, "survivors slid into the gaps");
        assert!(report.moved_bytes >= 48);
        assert!(report.faults.is_empty(), "compaction is tag-safe");
        let t = crate::thread::JavaThread::new("main");
        for (i, s) in survivors.iter().enumerate() {
            assert_eq!(
                heap.int_array_as_vec(&t, s).unwrap(),
                vec![i as i32; 8],
                "payloads survive background compaction"
            );
        }
        assert_eq!(heap.stats().compactions, report.compactions);
    }

    #[test]
    fn dropping_scanner_stops_it() {
        let heap = Heap::new(HeapConfig::default());
        let scanner = GcScanner::start(&heap, GcScannerConfig::default());
        drop(scanner); // must not hang or panic
    }
}

//! A background GC scanner thread.
//!
//! The scanner periodically walks every live object with untagged pointers
//! (marking) and then sweeps dead objects. It is the concurrent runtime
//! accessor from the paper's §3.3 challenge: if MTE checking were enabled
//! process-wide, this thread would fault on every object currently tagged
//! for a native-code borrower, even though its accesses are perfectly
//! in-bounds.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;

use mte_sim::{MteThread, TagCheckFault, TcfMode};

use crate::heap::Heap;

pub use crate::heap::{GcStats, ScanOutcome};

/// Configuration for a [`GcScanner`].
#[derive(Clone, Debug)]
pub struct GcScannerConfig {
    /// Pause between scan+sweep cycles.
    pub interval: Duration,
    /// The process-wide check mode the scanner inherits.
    pub mode: TcfMode,
    /// Whether the runtime sets `TCO` on this thread. MTE4JNI keeps it
    /// `true` (checks suppressed); setting `false` models the naive
    /// process-wide enablement that the paper shows is unworkable.
    pub tco: bool,
    /// Thread name (ART calls its GC thread `HeapTaskDaemon`).
    pub name: String,
}

impl Default for GcScannerConfig {
    fn default() -> Self {
        GcScannerConfig {
            interval: Duration::from_millis(1),
            mode: TcfMode::None,
            tco: true,
            name: "HeapTaskDaemon".to_owned(),
        }
    }
}

/// A running background GC scanner. Stop it with [`GcScanner::stop`];
/// dropping it also stops it.
pub struct GcScanner {
    stop: Arc<AtomicBool>,
    cycles: Arc<AtomicU64>,
    faults: Arc<Mutex<Vec<TagCheckFault>>>,
    handle: Option<JoinHandle<()>>,
}

impl GcScanner {
    /// Spawns the scanner over `heap`.
    pub fn start(heap: &Heap, config: GcScannerConfig) -> GcScanner {
        let stop = Arc::new(AtomicBool::new(false));
        let cycles = Arc::new(AtomicU64::new(0));
        let faults: Arc<Mutex<Vec<TagCheckFault>>> = Arc::new(Mutex::new(Vec::new()));
        let heap = heap.clone();
        let handle = {
            let stop = Arc::clone(&stop);
            let cycles = Arc::clone(&cycles);
            let faults = Arc::clone(&faults);
            std::thread::Builder::new()
                .name(config.name.clone())
                .spawn(move || {
                    let mte = MteThread::new(config.name.as_str());
                    mte.set_mode(config.mode);
                    mte.set_tco(config.tco);
                    while !stop.load(Ordering::Relaxed) {
                        let outcome = heap.scan_live(&mte);
                        telemetry::record_rare(|| telemetry::Event::GcScan {
                            objects: u32::try_from(outcome.objects).unwrap_or(u32::MAX),
                        });
                        if !outcome.faults.is_empty() {
                            faults.lock().extend(outcome.faults);
                        }
                        heap.sweep();
                        cycles.fetch_add(1, Ordering::Relaxed);
                        std::thread::sleep(config.interval);
                    }
                })
                .expect("spawning the GC scanner thread")
        };
        GcScanner {
            stop,
            cycles,
            faults,
            handle: Some(handle),
        }
    }

    /// Completed scan+sweep cycles so far.
    pub fn cycles(&self) -> u64 {
        self.cycles.load(Ordering::Relaxed)
    }

    /// Tag-check faults the scanner has hit so far.
    pub fn fault_count(&self) -> usize {
        self.faults.lock().len()
    }

    /// Stops the scanner and returns its report.
    pub fn stop(mut self) -> GcReport {
        self.shutdown()
    }

    fn shutdown(&mut self) -> GcReport {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
        GcReport {
            cycles: self.cycles.load(Ordering::Relaxed),
            faults: std::mem::take(&mut *self.faults.lock()),
        }
    }
}

impl Drop for GcScanner {
    fn drop(&mut self) {
        if self.handle.is_some() {
            self.shutdown();
        }
    }
}

impl fmt::Debug for GcScanner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GcScanner")
            .field("cycles", &self.cycles())
            .field("faults", &self.fault_count())
            .finish()
    }
}

/// Final report from a stopped [`GcScanner`].
#[derive(Clone, Debug, Default)]
pub struct GcReport {
    /// Scan+sweep cycles completed.
    pub cycles: u64,
    /// All tag-check faults encountered.
    pub faults: Vec<TagCheckFault>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heap::HeapConfig;
    use mte_sim::{Tag, TaggedPtr};

    #[test]
    fn scanner_collects_garbage_in_background() {
        let heap = Heap::new(HeapConfig::default());
        let scanner = GcScanner::start(&heap, GcScannerConfig::default());
        for _ in 0..50 {
            let _garbage = heap.alloc_int_array(32).unwrap();
        }
        // Wait for at least one full cycle after the garbage was created.
        let target = scanner.cycles() + 2;
        while scanner.cycles() < target {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(heap.live_count(), 0);
        let report = scanner.stop();
        assert!(report.cycles >= 2);
        assert!(report.faults.is_empty(), "TCO-respecting scanner never faults");
    }

    #[test]
    fn naive_process_wide_mte_makes_the_scanner_fault() {
        let heap = Heap::new(HeapConfig::default());
        // A native borrower tagged this object (simulated directly here).
        let a = heap.alloc_int_array(64).unwrap();
        let tag = Tag::new(0xB).unwrap();
        heap.memory()
            .set_tag_range(
                TaggedPtr::from_addr(a.addr()),
                a.data_addr() + a.byte_len() as u64,
                tag,
            )
            .unwrap();
        let scanner = GcScanner::start(
            &heap,
            GcScannerConfig {
                mode: TcfMode::Sync,
                tco: false, // the naive configuration
                interval: Duration::from_micros(100),
                ..GcScannerConfig::default()
            },
        );
        while scanner.cycles() < 3 {
            std::thread::sleep(Duration::from_millis(1));
        }
        let report = scanner.stop();
        assert!(
            !report.faults.is_empty(),
            "in-bounds GC reads fault when checking is process wide"
        );
        drop(a);
    }

    #[test]
    fn dropping_scanner_stops_it() {
        let heap = Heap::new(HeapConfig::default());
        let scanner = GcScanner::start(&heap, GcScannerConfig::default());
        drop(scanner); // must not hang or panic
    }
}

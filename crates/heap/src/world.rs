//! The stop-the-world gate used by the compacting collector.
//!
//! A tiny reader–writer gate with *recursive-read* semantics: a new
//! shared hold is granted even while an exclusive request is queued.
//! That property is load-bearing — a payload accessor can nest inside
//! another gated section on the same thread (e.g. guarded-copy's
//! `on_acquire` calling `Heap::read_payload` under the acquire-side
//! hold), and a queued collector must not deadlock that thread against
//! itself. Exclusive holds are short (one compaction pass), so writer
//! starvation is not a practical concern.

use std::sync::{Condvar, Mutex, PoisonError};

#[derive(Default)]
struct State {
    readers: usize,
    writer: bool,
}

/// The gate. Shared holds = mutator payload accesses and pins;
/// the exclusive hold = a compaction pass.
#[derive(Default)]
pub(crate) struct WorldGate {
    state: Mutex<State>,
    cond: Condvar,
}

impl WorldGate {
    /// Acquires a shared hold; blocks only while an exclusive hold is
    /// *active* (never for a merely queued one).
    pub(crate) fn read_recursive(&self) -> ReadGuard<'_> {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        while state.writer {
            state = self
                .cond
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
        state.readers += 1;
        ReadGuard { gate: self }
    }

    /// Acquires the exclusive hold, blocking until every shared hold is
    /// released.
    pub(crate) fn write(&self) -> WriteGuard<'_> {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        while state.readers > 0 || state.writer {
            state = self
                .cond
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
        state.writer = true;
        WriteGuard { gate: self }
    }
}

/// A shared hold on the [`WorldGate`].
pub(crate) struct ReadGuard<'a> {
    gate: &'a WorldGate,
}

impl Drop for ReadGuard<'_> {
    fn drop(&mut self) {
        let mut state = self
            .gate
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        state.readers -= 1;
        if state.readers == 0 {
            self.gate.cond.notify_all();
        }
    }
}

/// The exclusive hold on the [`WorldGate`].
pub(crate) struct WriteGuard<'a> {
    gate: &'a WorldGate,
}

impl Drop for WriteGuard<'_> {
    fn drop(&mut self) {
        let mut state = self
            .gate
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        state.writer = false;
        self.gate.cond.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn reads_nest_on_one_thread() {
        let gate = WorldGate::default();
        let a = gate.read_recursive();
        let b = gate.read_recursive(); // must not deadlock
        drop(a);
        drop(b);
        let _w = gate.write(); // fully released: writer proceeds
    }

    #[test]
    fn writer_waits_for_readers_and_excludes_them() {
        let gate = Arc::new(WorldGate::default());
        let read = gate.read_recursive();
        let (tx, rx) = std::sync::mpsc::channel();
        let writer = {
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || {
                let w = gate.write();
                tx.send(()).unwrap();
                std::thread::sleep(Duration::from_millis(20));
                drop(w);
            })
        };
        // The writer cannot start while the read hold is live.
        assert!(rx.recv_timeout(Duration::from_millis(50)).is_err());
        drop(read);
        rx.recv_timeout(Duration::from_secs(5)).unwrap();
        // And once it runs, a new reader waits for it to finish.
        let _read = gate.read_recursive();
        writer.join().unwrap();
    }

    #[test]
    fn queued_writer_does_not_block_new_readers() {
        let gate = Arc::new(WorldGate::default());
        let outer = gate.read_recursive();
        let writer = {
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || {
                let _w = gate.write();
            })
        };
        // Give the writer time to queue up behind `outer`.
        std::thread::sleep(Duration::from_millis(20));
        // Recursive shared acquisition must still succeed immediately.
        let inner = gate.read_recursive();
        drop(inner);
        drop(outer);
        writer.join().unwrap();
    }
}

//! Free-list block allocator with configurable alignment.
//!
//! ART's allocator aligns objects to 8 bytes by default; MTE4JNI changes
//! this to 16 so that no two objects share a tag granule (paper §4.1).
//! Both configurations are first-class here so the ablation can show the
//! granule-sharing hazard and measure the fragmentation cost of the wider
//! alignment.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

/// First-fit free-list allocator over an abstract address range.
///
/// Purely an address-space manager: it does not touch memory contents.
/// Thread safe; allocation order under contention is unspecified but
/// blocks never overlap.
pub struct BlockAllocator {
    start: u64,
    end: u64,
    align: u64,
    free: Mutex<Vec<(u64, u64)>>,
    bytes_requested: AtomicU64,
    bytes_allocated: AtomicU64,
    in_use: AtomicU64,
    peak: AtomicU64,
}

impl BlockAllocator {
    /// Creates an allocator over `[start, start + len)` with the given
    /// block alignment.
    ///
    /// # Panics
    ///
    /// Panics if `align` is not a power of two or `start` is not aligned.
    pub fn new(start: u64, len: usize, align: usize) -> BlockAllocator {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        assert_eq!(start % align as u64, 0, "start must be aligned");
        BlockAllocator {
            start,
            end: start + len as u64,
            align: align as u64,
            free: Mutex::new(vec![(start, len as u64)]),
            bytes_requested: AtomicU64::new(0),
            bytes_allocated: AtomicU64::new(0),
            in_use: AtomicU64::new(0),
            peak: AtomicU64::new(0),
        }
    }

    /// Range start.
    pub fn start(&self) -> u64 {
        self.start
    }

    /// One past the range end.
    pub fn end(&self) -> u64 {
        self.end
    }

    /// Block alignment in bytes.
    pub fn alignment(&self) -> usize {
        self.align as usize
    }

    fn round(&self, len: usize) -> u64 {
        (len.max(1) as u64).div_ceil(self.align) * self.align
    }

    /// Allocates an aligned block of at least `len` bytes, returning its
    /// address and the rounded block size, or `None` when exhausted.
    pub fn alloc(&self, len: usize) -> Option<(u64, usize)> {
        let want = self.round(len);
        let mut free = self.free.lock();
        let idx = free.iter().position(|&(_, flen)| flen >= want)?;
        let (fstart, flen) = free[idx];
        if flen == want {
            free.remove(idx);
        } else {
            free[idx] = (fstart + want, flen - want);
        }
        drop(free);
        self.bytes_requested.fetch_add(len as u64, Ordering::Relaxed);
        self.bytes_allocated.fetch_add(want, Ordering::Relaxed);
        let now = self.in_use.fetch_add(want, Ordering::Relaxed) + want;
        self.peak.fetch_max(now, Ordering::Relaxed);
        Some((fstart, want as usize))
    }

    /// Frees a block previously returned by [`Self::alloc`] (pass the
    /// *rounded* size it returned), coalescing with neighbours.
    ///
    /// # Panics
    ///
    /// Panics on double free, overlap, or a block outside the range.
    pub fn free(&self, addr: u64, block_len: usize) {
        let len = block_len as u64;
        assert!(
            addr >= self.start && addr + len <= self.end && addr.is_multiple_of(self.align),
            "freed block {addr:#x}+{len} invalid for this allocator"
        );
        let mut free = self.free.lock();
        let pos = free.partition_point(|&(fstart, _)| fstart < addr);
        if let Some(&(next, _)) = free.get(pos) {
            assert!(addr + len <= next, "double free or overlap at {addr:#x}");
        }
        if pos > 0 {
            let (pstart, plen) = free[pos - 1];
            assert!(pstart + plen <= addr, "double free or overlap at {addr:#x}");
        }
        free.insert(pos, (addr, len));
        if pos + 1 < free.len() && free[pos].0 + free[pos].1 == free[pos + 1].0 {
            free[pos].1 += free[pos + 1].1;
            free.remove(pos + 1);
        }
        if pos > 0 && free[pos - 1].0 + free[pos - 1].1 == free[pos].0 {
            free[pos - 1].1 += free[pos].1;
            free.remove(pos);
        }
        drop(free);
        self.in_use.fetch_sub(len, Ordering::Relaxed);
    }

    /// Replaces the free list with the complement of `allocated`, a
    /// sorted, non-overlapping list of `(addr, block_len)` blocks — the
    /// post-compaction heap layout. The cumulative request/allocation
    /// counters are untouched (compaction moves blocks, it does not
    /// allocate), but `bytes_in_use` is re-derived from the layout.
    ///
    /// # Panics
    ///
    /// Panics if `allocated` is unsorted, overlapping, misaligned, or
    /// outside the managed range.
    pub fn reset_layout(&self, allocated: &[(u64, u64)]) {
        let mut free = self.free.lock();
        free.clear();
        let mut cursor = self.start;
        let mut in_use = 0u64;
        for &(addr, len) in allocated {
            assert!(
                addr >= cursor && addr + len <= self.end && addr.is_multiple_of(self.align),
                "layout block {addr:#x}+{len} invalid for this allocator"
            );
            if addr > cursor {
                free.push((cursor, addr - cursor));
            }
            cursor = addr + len;
            in_use += len;
        }
        if cursor < self.end {
            free.push((cursor, self.end - cursor));
        }
        drop(free);
        self.in_use.store(in_use, Ordering::Relaxed);
    }

    /// Bytes currently allocated (rounded sizes).
    pub fn bytes_in_use(&self) -> u64 {
        self.in_use.load(Ordering::Relaxed)
    }

    /// High-water mark of [`Self::bytes_in_use`].
    pub fn peak_bytes(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }

    /// Cumulative internal fragmentation: bytes handed out beyond what was
    /// requested. This is the §4.1 "minor internal memory fragmentation"
    /// cost of 16-byte alignment, made measurable.
    pub fn fragmentation_bytes(&self) -> u64 {
        self.bytes_allocated.load(Ordering::Relaxed)
            - self.bytes_requested.load(Ordering::Relaxed)
    }
}

impl fmt::Debug for BlockAllocator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BlockAllocator")
            .field("start", &format_args!("{:#x}", self.start))
            .field("end", &format_args!("{:#x}", self.end))
            .field("align", &self.align)
            .field("in_use", &self.bytes_in_use())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_byte_alignment_packs_two_objects_per_granule() {
        let a = BlockAllocator::new(0x1000, 0x1000, 8);
        let (p1, _) = a.alloc(8).unwrap();
        let (p2, _) = a.alloc(8).unwrap();
        assert_eq!(p1 / 16, p2 / 16, "stock ART: neighbours share a granule");
    }

    #[test]
    fn sixteen_byte_alignment_separates_granules() {
        let a = BlockAllocator::new(0x1000, 0x1000, 16);
        let (p1, _) = a.alloc(8).unwrap();
        let (p2, _) = a.alloc(8).unwrap();
        assert_ne!(p1 / 16, p2 / 16, "MTE4JNI: one object per granule");
    }

    #[test]
    fn fragmentation_is_visible() {
        let a = BlockAllocator::new(0x1000, 0x1000, 16);
        a.alloc(8).unwrap();
        a.alloc(24).unwrap();
        assert_eq!(a.fragmentation_bytes(), 8 + 8);
    }

    #[test]
    fn alloc_free_reuse_cycle() {
        let a = BlockAllocator::new(0, 0x100, 16);
        let (p, l) = a.alloc(0x100).unwrap();
        assert!(a.alloc(16).is_none(), "exhausted");
        a.free(p, l);
        assert_eq!(a.alloc(0x100).unwrap().0, p);
    }

    #[test]
    fn coalescing_across_many_blocks() {
        let a = BlockAllocator::new(0, 0x1000, 8);
        let blocks: Vec<_> = (0..16).map(|_| a.alloc(0x100).unwrap()).collect();
        for &(p, l) in blocks.iter().rev() {
            a.free(p, l);
        }
        assert_eq!(a.alloc(0x1000).unwrap().0, 0);
        assert_eq!(a.bytes_in_use(), 0x1000);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_detected() {
        let a = BlockAllocator::new(0, 0x100, 8);
        let (p, l) = a.alloc(8).unwrap();
        a.free(p, l);
        a.free(p, l);
    }

    #[test]
    fn reset_layout_rebuilds_the_free_list() {
        let a = BlockAllocator::new(0x1000, 0x1000, 16);
        let blocks: Vec<_> = (0..4).map(|_| a.alloc(0x100).unwrap()).collect();
        assert_eq!(a.bytes_in_use(), 0x400);
        // Compacted layout: the middle two blocks slid left, the last
        // stayed pinned in place.
        let layout = [
            (0x1000u64, 0x100u64),
            (0x1100, 0x100),
            (0x1200, 0x100),
            (blocks[3].0, 0x100),
        ];
        a.reset_layout(&layout);
        assert_eq!(a.bytes_in_use(), 0x400);
        // The next allocations come from the coalesced tail gap.
        let (p, _) = a.alloc(0x100).unwrap();
        assert_eq!(p, 0x1400);
        // Freeing a layout block round-trips with the rebuilt list.
        a.free(0x1100, 0x100);
        assert_eq!(a.alloc(0x100).unwrap().0, 0x1100);
    }

    #[test]
    #[should_panic(expected = "invalid for this allocator")]
    fn reset_layout_rejects_overlap() {
        let a = BlockAllocator::new(0, 0x1000, 16);
        a.reset_layout(&[(0, 0x100), (0x80, 0x100)]);
    }

    #[test]
    fn peak_tracks_high_water() {
        let a = BlockAllocator::new(0, 0x1000, 8);
        let (p, l) = a.alloc(0x800).unwrap();
        a.free(p, l);
        a.alloc(0x100).unwrap();
        assert_eq!(a.peak_bytes(), 0x800);
    }
}

//! Handles to Java heap objects.
//!
//! A handle is the managed world's *reference*: cloning it models another
//! reference to the same object, and an object becomes garbage once every
//! handle to it has been dropped (collected by the next [`Heap::sweep`]).
//!
//! [`Heap::sweep`]: crate::Heap::sweep

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::heap::HEADER_SIZE;
use crate::types::PrimitiveType;

/// What kind of object a handle refers to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ObjKind {
    /// A primitive array with the given element type.
    Array(PrimitiveType),
    /// A `java.lang.String` (UTF-16 payload).
    String,
}

impl ObjKind {
    /// Element type of the payload.
    pub fn element_type(self) -> PrimitiveType {
        match self {
            ObjKind::Array(t) => t,
            ObjKind::String => PrimitiveType::Char,
        }
    }
}

/// Shared liveness token; the heap holds a `Weak` to it.
///
/// The address is atomic because the compacting collector relocates
/// objects in place: every handle sharing this token observes the new
/// address the moment [`LiveToken::relocate`] stores it.
#[derive(Debug)]
pub(crate) struct LiveToken {
    addr: AtomicU64,
    pub(crate) kind: ObjKind,
    pub(crate) len: usize,
}

impl LiveToken {
    pub(crate) fn new(addr: u64, kind: ObjKind, len: usize) -> LiveToken {
        LiveToken {
            addr: AtomicU64::new(addr),
            kind,
            len,
        }
    }

    /// Current header address.
    pub(crate) fn addr(&self) -> u64 {
        self.addr.load(Ordering::Acquire)
    }

    /// Rewrites the header address after the collector moved the object.
    pub(crate) fn relocate(&self, new_addr: u64) {
        self.addr.store(new_addr, Ordering::Release);
    }
}

/// An untyped reference to any heap object.
#[derive(Clone)]
pub struct ObjectRef {
    pub(crate) token: Arc<LiveToken>,
}

impl ObjectRef {
    /// Address of the object header in the simulated heap.
    pub fn addr(&self) -> u64 {
        self.token.addr()
    }

    /// Address of the first payload byte.
    pub fn data_addr(&self) -> u64 {
        self.token.addr() + HEADER_SIZE as u64
    }

    /// Object kind.
    pub fn kind(&self) -> ObjKind {
        self.token.kind
    }

    /// Element count (array length, or UTF-16 length for strings).
    pub fn len(&self) -> usize {
        self.token.len
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.token.len == 0
    }

    /// Payload size in bytes.
    pub fn byte_len(&self) -> usize {
        self.token.len * self.token.kind.element_type().size()
    }

    /// Downcasts to an array handle if this is a primitive array.
    pub fn as_array(&self) -> Option<ArrayRef> {
        matches!(self.token.kind, ObjKind::Array(_)).then(|| ArrayRef {
            token: Arc::clone(&self.token),
        })
    }

    /// Downcasts to a string handle if this is a string.
    pub fn as_string(&self) -> Option<StringRef> {
        matches!(self.token.kind, ObjKind::String).then(|| StringRef {
            token: Arc::clone(&self.token),
        })
    }
}

impl PartialEq for ObjectRef {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.token, &other.token)
    }
}

impl Eq for ObjectRef {}

impl fmt::Debug for ObjectRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ObjectRef({:#x}, {:?}, len {})", self.addr(), self.kind(), self.len())
    }
}

macro_rules! typed_handle {
    ($(#[$doc:meta])* $name:ident, $kind_pat:pat) => {
        $(#[$doc])*
        #[derive(Clone)]
        pub struct $name {
            pub(crate) token: Arc<LiveToken>,
        }

        impl $name {
            /// Address of the object header.
            pub fn addr(&self) -> u64 {
                self.token.addr()
            }

            /// Address of the first payload byte.
            pub fn data_addr(&self) -> u64 {
                self.token.addr() + HEADER_SIZE as u64
            }

            /// Element count.
            pub fn len(&self) -> usize {
                self.token.len
            }

            /// Whether the payload is empty.
            pub fn is_empty(&self) -> bool {
                self.token.len == 0
            }

            /// Payload size in bytes.
            pub fn byte_len(&self) -> usize {
                self.token.len * self.element_type().size()
            }

            /// Element type of the payload.
            pub fn element_type(&self) -> PrimitiveType {
                self.token.kind.element_type()
            }

            /// Upcasts to an untyped object reference.
            pub fn as_object(&self) -> ObjectRef {
                ObjectRef {
                    token: Arc::clone(&self.token),
                }
            }
        }

        impl PartialEq for $name {
            fn eq(&self, other: &Self) -> bool {
                Arc::ptr_eq(&self.token, &other.token)
            }
        }

        impl Eq for $name {}

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(
                    f,
                    concat!(stringify!($name), "({:#x}, {}, len {})"),
                    self.addr(),
                    self.element_type(),
                    self.len()
                )
            }
        }

        impl From<$name> for ObjectRef {
            fn from(h: $name) -> ObjectRef {
                ObjectRef { token: h.token }
            }
        }
    };
}

typed_handle!(
    /// A reference to a primitive array on the Java heap.
    ArrayRef,
    ObjKind::Array(_)
);

typed_handle!(
    /// A reference to a `java.lang.String` on the Java heap.
    StringRef,
    ObjKind::String
);

#[cfg(test)]
mod tests {
    use super::*;

    fn token(kind: ObjKind, len: usize) -> Arc<LiveToken> {
        Arc::new(LiveToken::new(0x7a00_0000_1000, kind, len))
    }

    #[test]
    fn array_handle_geometry() {
        let a = ArrayRef { token: token(ObjKind::Array(PrimitiveType::Int), 18) };
        assert_eq!(a.len(), 18);
        assert_eq!(a.byte_len(), 72);
        assert_eq!(a.data_addr(), a.addr() + HEADER_SIZE as u64);
        assert_eq!(a.element_type(), PrimitiveType::Int);
        assert!(!a.is_empty());
    }

    #[test]
    fn string_is_char_payload() {
        let s = StringRef { token: token(ObjKind::String, 5) };
        assert_eq!(s.element_type(), PrimitiveType::Char);
        assert_eq!(s.byte_len(), 10);
    }

    #[test]
    fn clones_are_equal_distinct_objects_are_not() {
        let a = ArrayRef { token: token(ObjKind::Array(PrimitiveType::Byte), 4) };
        let b = a.clone();
        assert_eq!(a, b);
        let c = ArrayRef { token: token(ObjKind::Array(PrimitiveType::Byte), 4) };
        assert_ne!(a, c, "equality is identity, not structure");
    }

    #[test]
    fn downcasts_respect_kind() {
        let o = ObjectRef { token: token(ObjKind::Array(PrimitiveType::Long), 2) };
        assert!(o.as_array().is_some());
        assert!(o.as_string().is_none());
        let s = ObjectRef { token: token(ObjKind::String, 2) };
        assert!(s.as_string().is_some());
        assert!(s.as_array().is_none());
    }

    #[test]
    fn relocation_updates_every_handle() {
        let a = ArrayRef { token: token(ObjKind::Array(PrimitiveType::Int), 4) };
        let o = a.as_object();
        a.token.relocate(0x7a00_0000_2000);
        assert_eq!(a.addr(), 0x7a00_0000_2000);
        assert_eq!(o.addr(), 0x7a00_0000_2000, "clones share the token");
        assert_eq!(o.data_addr(), 0x7a00_0000_2000 + HEADER_SIZE as u64);
    }

    #[test]
    fn upcast_round_trips() {
        let a = ArrayRef { token: token(ObjKind::Array(PrimitiveType::Int), 1) };
        let o = a.as_object();
        assert_eq!(o.as_array().unwrap(), a);
        assert_eq!(o.byte_len(), a.byte_len());
    }
}

//! Error type for heap operations.

use std::fmt;

use mte_sim::MemError;

use crate::types::PrimitiveType;

/// Errors produced by [`Heap`] operations.
///
/// [`Heap`]: crate::Heap
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HeapError {
    /// The Java heap has no free block large enough.
    OutOfMemory {
        /// Requested payload size in bytes.
        requested: usize,
    },
    /// A managed array access was out of bounds — the JVM-side check that
    /// native code bypasses.
    IndexOutOfBounds {
        /// Requested index.
        index: usize,
        /// Array length.
        length: usize,
    },
    /// The object has a different element type than the accessor expects.
    TypeMismatch {
        /// Type the accessor expected.
        expected: PrimitiveType,
        /// Actual element type of the object.
        actual: PrimitiveType,
    },
    /// The handle refers to an object the heap no longer tracks (stale
    /// handle across a sweep that collected it).
    StaleHandle {
        /// Object start address.
        addr: u64,
    },
    /// An underlying simulated-memory error (including tag-check faults).
    Mem(MemError),
    /// A string operation encountered invalid modified UTF-8.
    InvalidUtf8 {
        /// Byte offset of the offending sequence.
        offset: usize,
    },
}

impl fmt::Display for HeapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HeapError::OutOfMemory { requested } => {
                write!(f, "java heap cannot satisfy an allocation of {requested} bytes")
            }
            HeapError::IndexOutOfBounds { index, length } => {
                write!(f, "index {index} out of bounds for length {length}")
            }
            HeapError::TypeMismatch { expected, actual } => {
                write!(f, "expected {expected} array, found {actual}")
            }
            HeapError::StaleHandle { addr } => {
                write!(f, "handle to {addr:#x} refers to a collected object")
            }
            HeapError::Mem(e) => write!(f, "memory error: {e}"),
            HeapError::InvalidUtf8 { offset } => {
                write!(f, "invalid modified UTF-8 sequence at byte {offset}")
            }
        }
    }
}

impl std::error::Error for HeapError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HeapError::Mem(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MemError> for HeapError {
    fn from(e: MemError) -> Self {
        HeapError::Mem(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_meaningful() {
        let e = HeapError::IndexOutOfBounds { index: 21, length: 18 };
        assert_eq!(e.to_string(), "index 21 out of bounds for length 18");
        let e = HeapError::TypeMismatch {
            expected: PrimitiveType::Int,
            actual: PrimitiveType::Byte,
        };
        assert!(e.to_string().contains("int"));
        assert!(e.to_string().contains("byte"));
    }

    #[test]
    fn mem_error_converts_and_chains() {
        use std::error::Error;
        let e: HeapError = MemError::OutOfRange { addr: 4, len: 2 }.into();
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<HeapError>();
    }
}

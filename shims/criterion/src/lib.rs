//! Offline stand-in for the subset of `criterion` the benches use.
//!
//! Provides the `Criterion` / `BenchmarkGroup` / `Bencher` call surface
//! with a deliberately simple measurement loop: per benchmark it
//! auto-scales the iteration count until one sample takes ≥ 1 ms, takes
//! `sample_size` samples, and reports the minimum, mean, and maximum
//! per-iteration time. No statistical analysis, plots, or baselines —
//! the harness binaries under `crates/bench/src/bin` are the primary
//! measurement path; these benches are spot checks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

/// The benchmark driver handed to `criterion_group!` targets.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
        }
    }
}

/// A named benchmark identifier: `BenchmarkId::new("scheme", 4096)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered as `function_name/parameter`.
    pub fn new(function_name: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.id.fmt(f)
    }
}

/// Anything accepted as a benchmark name.
pub trait IntoBenchmarkId {
    /// The rendered id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::calibrated(&mut f);
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            f(&mut bencher);
            samples.push(bencher.per_iter());
        }
        report(&self.name, &id.into_id(), &samples);
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (kept for API parity; groups need no teardown).
    pub fn finish(self) {}
}

fn report(group: &str, id: &str, samples: &[Duration]) {
    let min = samples.iter().min().copied().unwrap_or_default();
    let max = samples.iter().max().copied().unwrap_or_default();
    let mean = samples
        .iter()
        .sum::<Duration>()
        .checked_div(samples.len() as u32)
        .unwrap_or_default();
    println!("{group}/{id}: min {min:>12.3?}  mean {mean:>12.3?}  max {max:>12.3?}");
}

/// The measurement handle passed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
    calibrating: bool,
}

impl Bencher {
    /// Runs `f` once in calibration mode to pick an iteration count where
    /// a sample lasts ≥ 1 ms (capped so tiny bodies still finish fast).
    fn calibrated<F: FnMut(&mut Bencher)>(f: &mut F) -> Bencher {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
            calibrating: true,
        };
        loop {
            f(&mut b);
            if b.elapsed >= Duration::from_millis(1) || b.iters >= 1 << 20 {
                b.calibrating = false;
                return b;
            }
            b.iters *= 8;
        }
    }

    /// Times `routine`, running it a calibrated number of iterations.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    fn per_iter(&self) -> Duration {
        debug_assert!(!self.calibrating);
        self.elapsed
            .checked_div(self.iters.max(1) as u32)
            .unwrap_or_default()
    }
}

/// Prevents the optimizer from discarding a benchmark's result.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Bundles benchmark functions into one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes flags like `--bench`; nothing to parse.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut runs = 0u64;
        group.bench_function(BenchmarkId::new("count", 1), |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        group.finish();
        assert!(runs > 0);
    }
}

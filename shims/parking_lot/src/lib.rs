//! Offline stand-in for the subset of `parking_lot` this workspace uses.
//!
//! The build environment has no access to a crates.io mirror, so the
//! workspace pins its external dependencies to local shims (see
//! `DESIGN.md` §3). This one maps `parking_lot::Mutex` onto
//! `std::sync::Mutex` with parking_lot's poison-free `lock()` signature;
//! a poisoned lock is recovered rather than propagated, matching
//! parking_lot's behaviour of not poisoning at all.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::sync::PoisonError;

/// A mutual-exclusion primitive with parking_lot's panic-free API.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// The guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex guarding `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the guarded value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available. Unlike
    /// `std::sync::Mutex`, never returns a poison error.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn try_lock_fails_while_held() {
        let m = Mutex::new(());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn panic_in_critical_section_does_not_poison() {
        let m = std::sync::Arc::new(Mutex::new(7));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 7);
    }
}

//! Offline stand-in for the subset of `proptest` the property tests use.
//!
//! Implements the `proptest!` macro, integer-range and `any::<T>()`
//! strategies, `prop::collection::vec`, `prop::sample::Index`, tuple
//! strategies, and the `prop_assert*` macros. Unlike upstream proptest
//! there is no shrinking: a failing case panics with the generated
//! inputs' values left to the assertion message. Case generation is
//! deterministic per (test name, case index), so failures reproduce.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Per-test configuration, consumed by `#![proptest_config(..)]`.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// The deterministic generator driving each property case.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded from the test name and case index, so each
    /// case — and each rerun of it — sees the same stream.
    pub fn for_case(test_name: &str, case: u32) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a offset basis
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng {
            state: h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// Next 64 random bits (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u128) -> u128 {
        debug_assert!(bound > 0);
        let wide = (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64());
        wide % bound
    }
}

/// Value-generation strategies.
pub mod strategy {
    use super::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Something that can generate values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start() <= self.end(), "empty range strategy");
                    let span = (*self.end() as i128 - *self.start() as i128) as u128 + 1;
                    (*self.start() as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// String-pattern strategy: upstream proptest treats a `&str` as a
    /// regex. This shim supports the one shape the workspace uses —
    /// `.{n,m}`, i.e. `n..=m` arbitrary characters.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let (lo, hi) = self
                .strip_prefix(".{")
                .and_then(|rest| rest.strip_suffix('}'))
                .and_then(|bounds| bounds.split_once(','))
                .and_then(|(lo, hi)| Some((lo.parse::<usize>().ok()?, hi.parse::<usize>().ok()?)))
                .unwrap_or_else(|| panic!("unsupported string pattern {self:?} (shim handles '.{{n,m}}')"));
            let len = lo + (rng.next_u64() as usize) % (hi - lo + 1);
            (0..len).map(|_| arbitrary_char(rng)).collect()
        }
    }

    fn arbitrary_char(rng: &mut TestRng) -> char {
        // Bias toward ASCII but cover the BMP and astral planes, so
        // modified-UTF-8 surrogate-pair paths get exercised.
        match rng.next_u64() % 4 {
            0 | 1 => char::from(32 + (rng.next_u64() % 95) as u8),
            2 => loop {
                #[allow(clippy::cast_possible_truncation)]
                if let Some(c) = char::from_u32((rng.next_u64() % 0xFFFF) as u32) {
                    return c;
                }
            },
            _ => loop {
                #[allow(clippy::cast_possible_truncation)]
                if let Some(c) = char::from_u32(0x1_0000 + (rng.next_u64() % 0xF_FFFF) as u32) {
                    return c;
                }
            },
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident / $i:tt),+);)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$i.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A / 0);
        (A / 0, B / 1);
        (A / 0, B / 1, C / 2);
        (A / 0, B / 1, C / 2, D / 3);
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
#[derive(Clone, Copy, Debug)]
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Arbitrary> strategy::Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy producing any value of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

/// The `prop::` strategy namespace.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::strategy::Strategy;
        use crate::TestRng;
        use std::ops::Range;

        /// A length range for generated collections.
        #[derive(Clone, Copy, Debug)]
        pub struct SizeRange {
            lo: usize,
            hi_exclusive: usize,
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> SizeRange {
                SizeRange {
                    lo: r.start,
                    hi_exclusive: r.end,
                }
            }
        }

        /// The strategy returned by [`vec`].
        #[derive(Clone, Copy, Debug)]
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// Generates `Vec`s of `element` values with a length in `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                assert!(self.size.lo < self.size.hi_exclusive, "empty size range");
                let span = (self.size.hi_exclusive - self.size.lo) as u64;
                let len = self.size.lo + (rng.next_u64() % span) as usize;
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    /// Sampling helpers.
    pub mod sample {
        use crate::{Arbitrary, TestRng};

        /// An index into a collection whose length is not yet known: call
        /// [`Index::index`] with the length to resolve it.
        #[derive(Clone, Copy, Debug, PartialEq, Eq)]
        pub struct Index(usize);

        impl Index {
            /// Resolves against a collection of `len` items (`len > 0`).
            pub fn index(&self, len: usize) -> usize {
                assert!(len > 0, "Index::index on empty collection");
                self.0 % len
            }
        }

        impl Arbitrary for Index {
            fn arbitrary(rng: &mut TestRng) -> Index {
                Index(rng.next_u64() as usize)
            }
        }
    }
}

/// The usual single-import surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::Strategy;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
    pub use crate::{Arbitrary, ProptestConfig, TestRng};
}

/// Defines property tests: each `fn name(arg in strategy, ..) { .. }`
/// becomes a `#[test]` running `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        #[test]
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut prop_rng = $crate::TestRng::for_case(stringify!($name), case);
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut prop_rng);)+
                $body
            }
        }
    )*};
}

/// Skips the current generated case when `cond` fails. Expands to a
/// `continue` of the per-case loop `proptest!` generates, so it is only
/// valid at the top level of a property body (which is how the
/// workspace uses it).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($rest:tt)*)?) => {
        if !$cond {
            continue;
        }
    };
}

/// `assert!` under a name the property tests expect.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `assert_eq!` under a name the property tests expect.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// `assert_ne!` under a name the property tests expect.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        fn ranges_respect_bounds(v in 3u8..17, w in -4i64..=4) {
            prop_assert!((3..17).contains(&v));
            prop_assert!((-4..=4).contains(&w));
        }

        fn vecs_respect_size(data in prop::collection::vec(any::<u8>(), 2..9)) {
            prop_assert!((2..9).contains(&data.len()));
        }

        fn tuples_and_indices(pair in (any::<prop::sample::Index>(), 1usize..40)) {
            let (idx, len) = pair;
            prop_assert!(idx.index(len) < len);
        }
    }

    #[test]
    fn cases_are_reproducible() {
        let mut a = TestRng::for_case("t", 3);
        let mut b = TestRng::for_case("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("t", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }
}

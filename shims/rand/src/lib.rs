//! Offline stand-in for the subset of `rand` 0.8 the workloads use:
//! `StdRng::seed_from_u64`, `gen_range` over integer ranges, and
//! `gen_ratio`.
//!
//! The generator is a splitmix64 core — statistically fine for synthetic
//! workload data, deterministic for a given seed, and dependency-free.
//! The stream differs from upstream `rand`'s ChaCha-based `StdRng`; the
//! workspace never relies on a specific stream, only on per-seed
//! determinism (kernels and their oracles consume the same generated
//! data within one process).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A random number generator seedable from a `u64`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The user-facing sampling interface.
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`. Panics on an empty range,
    /// like upstream `rand`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        let (lo, hi) = range.bounds_inclusive();
        assert!(lo <= hi, "cannot sample empty range");
        let span = (hi - lo) as u128 + 1;
        let v = (self.next_u64() as u128) % span;
        T::from_i128(lo + v as i128)
    }

    /// Returns true with probability `numerator / denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(denominator > 0 && numerator <= denominator);
        (self.next_u64() % u64::from(denominator)) < u64::from(numerator)
    }
}

impl<R: RngCore> Rng for R {}

/// The raw entropy source.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Integer types that [`Rng::gen_range`] can sample.
pub trait SampleUniform: Copy {
    /// Widens to `i128` (every integer type in use fits).
    fn to_i128(self) -> i128;
    /// Narrows from `i128`; the value is always in the type's range.
    fn from_i128(v: i128) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn to_i128(self) -> i128 {
                self as i128
            }
            #[allow(clippy::cast_possible_truncation)]
            fn from_i128(v: i128) -> Self {
                v as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Range shapes accepted by [`Rng::gen_range`].
pub trait SampleRange<T: SampleUniform> {
    /// The inclusive `(low, high)` bounds, widened to `i128`.
    fn bounds_inclusive(self) -> (i128, i128);
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn bounds_inclusive(self) -> (i128, i128) {
        (self.start.to_i128(), self.end.to_i128() - 1)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn bounds_inclusive(self) -> (i128, i128) {
        (self.start().to_i128(), self.end().to_i128())
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: a splitmix64 stream.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // splitmix64 (Steele, Lea & Flood): full 64-bit period, passes
            // BigCrush, and one addition + two xor-shift-multiplies per draw.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen_range(0u64..1 << 40), b.gen_range(0u64..1 << 40));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(-8i32..=8);
            assert!((-8..=8).contains(&v));
            let b = rng.gen_range(b'0'..=b'9');
            assert!(b.is_ascii_digit());
            let u = rng.gen_range(0usize..13);
            assert!(u < 13);
        }
    }

    #[test]
    fn gen_ratio_is_roughly_calibrated() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_ratio(1, 8)).count();
        assert!((900..1600).contains(&hits), "1/8 ratio wildly off: {hits}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = rng.gen_range(5u32..5);
    }
}

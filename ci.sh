#!/usr/bin/env bash
# CI for the MTE4JNI reproduction.
#
# Assumes the OFFLINE-VENDORED setup described in DESIGN.md §3: there is
# no reachable crates.io registry, all external dependencies are path
# shims under shims/, and .cargo/config.toml pins `net.offline = true`.
# Nothing here may touch the network.
set -euo pipefail
cd "$(dirname "$0")"

echo "== build (workspace, all targets) =="
cargo build --offline --workspace --all-targets

echo "== test (workspace) =="
cargo test --offline --workspace -q

echo "== clippy =="
if cargo clippy --version >/dev/null 2>&1; then
    cargo clippy --offline --workspace --all-targets -- -D warnings
else
    echo "clippy not installed; skipping lint stage"
fi

out="$(mktemp -d)"
trap 'rm -rf "$out"' EXIT

echo "== bench smoke: kernel throughput regression gate =="
# Reduced-scale throughput run of the wide-word kernels (DESIGN.md §10),
# written at the repo root so the report is inspectable after CI. Release
# profile: the committed baseline was measured with optimizations on, and
# debug numbers would gate nothing. This stage runs *before* the long
# stress gates: several minutes of sustained load ahead of it can push
# the host off its boost clocks and fail the comparison for reasons that
# have nothing to do with the kernels.
cargo run --offline -q --release -p bench --bin throughput -- \
    --quick --json . >/dev/null
test -s BENCH_throughput.json
baseline="crates/bench/baselines/BENCH_throughput.baseline.json"
if command -v python3 >/dev/null 2>&1; then
    python3 - BENCH_throughput.json "$baseline" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
base = json.load(open(sys.argv[2]))
cur, ref = doc["summary"], base["summary"]
# Checked-path throughput may not regress more than 20% against the
# committed baseline.
gates = [k for k in ref if k.startswith("checked_") and k.endswith("_gbps_4k")]
assert gates, "baseline summary carries no checked-path gate figures"
for key in gates:
    floor = 0.8 * ref[key]
    assert cur[key] >= floor, (
        f"{key} regressed: {cur[key]:.3f} GB/s < 80% of baseline {ref[key]:.3f}"
    )
# The optimization's acceptance floor: >=4x over the scalar reference on
# 4 KiB checked read/write and on set_tag_range.
for key in ("speedup_read_4k", "speedup_write_4k", "speedup_set_tag_range"):
    assert cur[key] >= 4.0, f"{key} below 4x: {cur[key]:.2f}"
print("throughput gate:", ", ".join(f"{k}={cur[k]:.2f}" for k in sorted(gates)))
PY
else
    # No python3: at least require the report and its headline fields.
    grep -q '"speedup_read_4k"' BENCH_throughput.json
    echo "throughput report present (python3 unavailable; gate skipped)"
fi

echo "== bench smoke: tag-table thread-scaling gate =="
# The lock-free redesign's regression gate (DESIGN.md §13): quick
# scaling run at 1/4/16 threads with the full-mode op budget (the
# default quick budget is too small to amortize thread spawn/join on a
# loaded host), compared against the committed baseline. Gated:
#   * lock_free contended ops/s within 20% of baseline at 1/4/16;
#   * lock_free >= two_tier_k16 at every measured point, both modes;
#   * contended 16-thread lock_free/two_tier speedup above its floor.
# Like the throughput stage this runs release and ahead of the long
# stress gates (thermal drift).
cargo run --offline -q --release -p bench --bin scaling -- \
    --quick --pairs 20000 --json . >/dev/null
test -s BENCH_scaling.json
scaling_baseline="crates/bench/baselines/BENCH_scaling.baseline.json"
if command -v python3 >/dev/null 2>&1; then
    python3 - BENCH_scaling.json "$scaling_baseline" "$(nproc)" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
base = json.load(open(sys.argv[2]))
def rows(d):
    return {(r["mode"], r["threads"]): r for r in d["rows"]}
cur, ref = rows(doc), rows(base)
for key in [("contended", t) for t in (1, 4, 16)]:
    floor = 0.8 * ref[key]["lock_free"]
    got = cur[key]["lock_free"]
    assert got >= floor, (
        f"lock_free {key} regressed: {got:,.0f} ops/s < 80% of "
        f"baseline {ref[key]['lock_free']:,.0f}"
    )
for key, row in cur.items():
    assert row["lock_free"] >= row["two_tier_k16"], (
        f"lock_free slower than two_tier at {key}: "
        f"{row['lock_free']:,.0f} < {row['two_tier_k16']:,.0f}"
    )
speedup = doc["summary"]["contended_16_speedup"]
ncpu = int(sys.argv[3])
# Acceptance target is 10x on contended multicore hardware. A
# single-core CI host serializes the contention two-tier loses to, so
# it keeps the historical 3x floor (measured ~5-6x; see DESIGN.md §13);
# with real parallelism (nproc >= 2) the CAS fast path pulls further
# ahead of the mutex ladder and the ratchet tightens to 6x on the way
# to the 10x target. The measured ratio is recorded in the committed
# BENCH_scaling.json either way.
floor = 3.0 if ncpu < 2 else 6.0
assert speedup >= floor, (
    f"contended-16 speedup below {floor:.0f}x (nproc={ncpu}): {speedup:.2f}"
)
print(f"scaling gate: contended-16 lock_free {speedup:.1f}x over two_tier "
      f"(floor {floor:.0f}x, nproc={ncpu})")
PY
else
    grep -q '"contended_16_speedup"' BENCH_scaling.json
    echo "scaling report present (python3 unavailable; gate skipped)"
fi

echo "== bench smoke: fig6 end-to-end contention gate =="
# The default-backend switch's regression gate (DESIGN.md §15): a
# reduced fig6 run at 16 contended threads through the full JNI funnel,
# written at the repo root like the other bench smoke reports. The
# acceptance target is lock-free <= two-tier on contended multicore
# hardware. A single-core host serializes the contention the two-tier
# mutexes lose to and run-to-run noise is ~+/-8%, so the ratio is only
# *enforced* on multicore hosts (nproc >= 2), at a 15% ceiling that
# leaves headroom over the noise; single-core runs validate the report
# shape and print the ratios for the record. Release profile, ahead of
# the long stress gates (thermal drift), like the other perf smokes.
cargo run --offline -q --release -p bench --bin fig6 -- \
    --threads 16 --reads 2000 --json . >/dev/null
test -s BENCH_fig6.json
if command -v python3 >/dev/null 2>&1; then
    python3 - BENCH_fig6.json "$(nproc)" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
ncpu = int(sys.argv[2])
enforce = ncpu >= 2
assert doc["bench"] == "fig6"
assert doc["params"]["threads"] == 16, doc["params"]
rows = {(r["sharing"], r["scheme"]): r for r in doc["rows"]}
for mode in ("same_array", "different_arrays"):
    for tcf in ("sync", "async"):
        lf = rows[(mode, f"lock-free {tcf}")]["time_ns"]
        tt = rows[(mode, f"two-tier {tcf}")]["time_ns"]
        if mode == "same_array" and enforce:
            assert lf <= 1.15 * tt, (
                f"lock-free {tcf} end-to-end regressed vs two-tier on the "
                f"contended rows: {lf/1e6:.1f}ms > 115% of {tt/1e6:.1f}ms"
            )
        print(f"fig6 gate: {mode} {tcf}: lock-free {lf/1e6:.1f}ms, "
              f"two-tier {tt/1e6:.1f}ms ({lf/tt:.2f}x)")
if not enforce:
    print(f"fig6 gate: single-core host (nproc={ncpu}) serializes the "
          "contention; ratios reported, not enforced")
PY
else
    grep -q '"lock-free sync"' BENCH_fig6.json
    echo "fig6 report present (python3 unavailable; gate skipped)"
fi

echo "== bench smoke: multi-tenant serving gate =="
# The serving layer's regression gate (DESIGN.md §16): quick fleet run
# over every scheme at 1/4/16 tenants plus the noisy-neighbor rows,
# compared against the committed baseline. The binary itself asserts
# fleet quiescence and neighbor isolation after every measurement, so
# reaching the gate already implies soundness. Per-row req/s on a
# loaded single-core host swings ~±25% run to run, so the throughput
# gate holds the *fleet peak* (stable within ~10%) to ≤ 20% regression;
# the noisy-neighbor p99 ratios are min-of-repeats on both sides of the
# same arrival seed and gated at the 1.5x acceptance bound.
cargo run --offline -q --release -p bench --bin serving -- \
    --quick --json . >/dev/null
test -s BENCH_serving.json
serving_baseline="crates/bench/baselines/BENCH_serving.baseline.json"
if command -v python3 >/dev/null 2>&1; then
    python3 - BENCH_serving.json "$serving_baseline" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
base = json.load(open(sys.argv[2]))
assert doc["bench"] == "serving"
def keys(d):
    return {(r["scheme"], r["tenants"], r["noisy"]) for r in d["rows"]}
assert keys(doc) == keys(base), "serving row set drifted from the baseline"
peak, ref = doc["summary"]["peak_req_s"], base["summary"]["peak_req_s"]
assert peak >= 0.8 * ref, (
    f"fleet peak regressed: {peak:,.0f} req/s < 80% of baseline {ref:,.0f}"
)
rows = {(r["scheme"], r["tenants"], r["noisy"]): r for r in doc["rows"]}
for scheme in ("lock-free", "two-tier", "global"):
    noisy = rows[(scheme, 4, True)]
    assert noisy["t0_health"] == "quarantined", noisy
    assert noisy["contained_faults_t0"] > 0, noisy
ratios = {k: v for k, v in doc["summary"].items() if k.startswith("noisy_p99_ratio_")}
assert ratios, "summary carries no noisy p99 ratios"
for key, ratio in ratios.items():
    assert ratio <= 1.5, f"{key} above the 1.5x acceptance bound: {ratio:.2f}"
print("serving gate: peak %.0f req/s, %s" % (
    peak, ", ".join(f"{k.removeprefix('noisy_p99_ratio_')}={v:.2f}x"
                    for k, v in sorted(ratios.items()))))
PY
else
    grep -q '"peak_req_s"' BENCH_serving.json
    echo "serving report present (python3 unavailable; gate skipped)"
fi

echo "== deterministic stress (fixed seed, lock-free table) =="
# The redesign's dedicated stress gate: 1000 fixed-seed schedules over
# the lock-free table with fault injection, plus the mutation
# self-check (the run fails unless the deliberately broken
# AtomicEntryTable is caught). Bit-reproducible like the main sweep.
lf_flags=(--scheme lock-free --seed 0xC1 --schedules 1000
    --fault-ppm 2000 --self-check)
cargo run --offline -q -p stress --bin stress -- \
    "${lf_flags[@]}" --json "$out/stress-lf1"
test -s "$out/stress-lf1/STRESS.json"
cargo run --offline -q -p stress --bin stress -- \
    "${lf_flags[@]}" --json "$out/stress-lf2" >/dev/null
cmp "$out/stress-lf1/STRESS.json" "$out/stress-lf2/STRESS.json"
echo "lock-free STRESS.json bit-reproducible across runs"

echo "== deterministic stress (fixed seed) =="
# Fixed-seed schedule sweep over all three schemes with fault injection,
# plus the mutation self-check: the run fails unless the harness catches
# the deliberately broken tables (DESIGN.md §9). Fast: a few seconds.
stress_flags=(--seed 0xC1 --schedules 120 --fault-ppm 2000 --self-check)
cargo run --offline -q -p stress --bin stress -- \
    "${stress_flags[@]}" --json "$out/stress1"
test -s "$out/stress1/STRESS.json"
# Bit-reproducibility: the identical invocation must produce an
# identical report (traces are seeded; the JSON carries no timestamps).
cargo run --offline -q -p stress --bin stress -- \
    "${stress_flags[@]}" --json "$out/stress2" >/dev/null
cmp "$out/stress1/STRESS.json" "$out/stress2/STRESS.json"
echo "STRESS.json bit-reproducible across runs"

echo "== pin-aware lifecycle: fixed-seed stress gate =="
# The object-lifecycle schedules (acquire, drop the last Java handle,
# sweep, release — DESIGN.md §11): 1000 schedules per scheme under fault
# injection. Any reclaimed-while-borrowed object, unbalanced pin, stale
# table entry, or recycled-address tag alias fails the run.
cargo run --offline -q -p stress --bin stress -- \
    --lifecycle --seed 0xC1 --schedules 1000 --fault-ppm 2000 \
    --json "$out/lifecycle"
test -s "$out/lifecycle/STRESS.json"
grep -q '"workload": "lifecycle"' "$out/lifecycle/STRESS.json"

echo "== fault containment: fixed-seed stress gate =="
# Containment schedules (DESIGN.md §12): MTE4JNI VMs under
# FaultPolicy::Contain with a guarded-copy fallback, workers that go out
# of bounds on purpose, and mixed per-point injection including spurious
# tag-check faults. The binary exits nonzero on any oracle violation
# (stale entry, leaked shadow or native byte, unbalanced pin, residual
# tag) — VM survival across all 1000 schedules is the gate.
containment_flags=(--containment --seed 0xC7 --schedules 1000 --rounds 4
    --fault-irg-ppm 2000 --fault-ldg-ppm 2000 --fault-stg-ppm 2000
    --fault-alloc-ppm 2000 --fault-spurious-ppm 2000)
cargo run --offline -q -p stress --bin stress -- \
    "${containment_flags[@]}" --json "$out/contain1"
test -s "$out/contain1/STRESS.json"
grep -q '"workload": "containment"' "$out/contain1/STRESS.json"
if command -v python3 >/dev/null 2>&1; then
    python3 - "$out/contain1/STRESS.json" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
plan = doc["params"]["fault_plan"]
assert all(plan[k] >= 2000 for k in plan), plan
for scheme in doc["schemes"]:
    assert scheme["clean"] and not scheme["violations"], scheme
    assert scheme["contained_faults"] > 0, scheme
    assert scheme["degraded_quarantine"] > 0, scheme
print("containment gate:", ", ".join(
    "%s contained=%d quarantined=%d exhausted=%d"
    % (s["scheme"], s["contained_faults"], s["degraded_quarantine"],
       s["degraded_tag_exhaustion"])
    for s in doc["schemes"]))
PY
else
    grep -q '"contained_faults"' "$out/contain1/STRESS.json"
    echo "containment report present (python3 unavailable; gate skipped)"
fi
# Containment must be as deterministic as the clean schedules: the same
# seed replays the same faults, tombstones, and degradations.
cargo run --offline -q -p stress --bin stress -- \
    "${containment_flags[@]}" --json "$out/contain2" >/dev/null
cmp "$out/contain1/STRESS.json" "$out/contain2/STRESS.json"
echo "containment STRESS.json bit-reproducible across runs"

echo "== serving isolation: fixed-seed stress gate =="
# The multi-tenant isolation oracle (DESIGN.md §16) under the
# deterministic scheduler: every schedule runs a 3-tenant fleet with
# tenant 0 on the mixed containment fault plan plus deliberate
# out-of-bounds traffic, one scheduled worker per tenant. The binary
# exits nonzero unless every *other* tenant finishes everything it
# admitted with zero contained faults and the whole fleet passes the
# quiescence oracle (balanced pins, no stale entries, no leaked
# shadows). Bit-reproducible like the other stress gates.
serving_flags=(--serving --seed 0x5E --schedules 200
    --fault-irg-ppm 2000 --fault-ldg-ppm 2000 --fault-stg-ppm 2000
    --fault-alloc-ppm 2000 --fault-spurious-ppm 2000)
cargo run --offline -q -p stress --bin stress -- \
    "${serving_flags[@]}" --json "$out/serving1"
test -s "$out/serving1/STRESS.json"
grep -q '"workload": "serving"' "$out/serving1/STRESS.json"
if command -v python3 >/dev/null 2>&1; then
    python3 - "$out/serving1/STRESS.json" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
plan = doc["params"]["fault_plan"]
assert all(plan[k] >= 2000 for k in plan), plan
for scheme in doc["schemes"]:
    assert scheme["clean"] and not scheme["violations"], scheme
    if scheme["scheme"] != "guarded":
        assert scheme["contained_faults"] > 0, scheme
        assert scheme["degraded_quarantine"] > 0, scheme
print("serving isolation gate:", ", ".join(
    "%s contained=%d quarantined=%d" % (
        s["scheme"], s["contained_faults"], s["degraded_quarantine"])
    for s in doc["schemes"]))
PY
else
    grep -q '"contained_faults"' "$out/serving1/STRESS.json"
    echo "serving report present (python3 unavailable; gate skipped)"
fi
cargo run --offline -q -p stress --bin stress -- \
    "${serving_flags[@]}" --json "$out/serving2" >/dev/null
cmp "$out/serving1/STRESS.json" "$out/serving2/STRESS.json"
echo "serving STRESS.json bit-reproducible across runs"

echo "== bench smoke: compaction + pinning =="
# Quick fragmentation-under-churn run (sweep-only vs mark-compact around
# a pinned borrow). The binary itself asserts the pinned survivor was
# treated as an obstacle in every compaction pass; the report lands at
# the repo root like the other bench smoke outputs.
cargo run --offline -q --release -p bench --bin compaction -- \
    --quick --json . >/dev/null
test -s BENCH_compaction.json
if command -v python3 >/dev/null 2>&1; then
    python3 - BENCH_compaction.json <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
s = doc["summary"]
assert doc["bench"] == "compaction"
assert s["pinned_skipped_total"] >= doc["params"]["rounds"], s
assert s["moved_objects_total"] > 0, s
assert s["final_largest_alloc_compact"] >= s["final_largest_alloc_sweep"], s
hists = json.dumps(doc["telemetry"])
assert "gc_pause" in hists, "telemetry must carry the gc_pause histogram"
print("compaction gate: recovery %.2fx, %d moved, %d pinned skips"
      % (s["largest_alloc_recovery"], s["moved_objects_total"],
         s["pinned_skipped_total"]))
PY
else
    grep -q '"pinned_skipped_total"' BENCH_compaction.json
    echo "compaction report present (python3 unavailable; gate skipped)"
fi

echo "== bench JSON sanity =="
# A fast fig5 run must emit a parseable, schema-versioned report whose
# summary carries the headline ratios (README "Regenerating" section),
# including the quarantined guarded-copy-fallback column (--degraded).
cargo run --offline -q -p bench --bin fig5 -- \
    --repeats 1 --max-pow 4 --degraded --json "$out" >/dev/null
test -s "$out/BENCH_fig5.json"
if command -v python3 >/dev/null 2>&1; then
    python3 - "$out/BENCH_fig5.json" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["schema_version"] == 1, doc["schema_version"]
assert doc["bench"] == "fig5"
assert doc["rows"], "rows must be non-empty"
assert "avg_mte_sync_ratio" in doc["summary"], sorted(doc["summary"])
assert "avg_degraded_guarded_ratio" in doc["summary"], sorted(doc["summary"])
assert doc["summary"]["degraded_fallback_ratio"] > 0, doc["summary"]
assert all("degraded_guarded_ratio" in row for row in doc["rows"])
assert "counters" in doc["telemetry"]
print("BENCH_fig5.json sane:", len(doc["rows"]), "rows (with degraded column)")
PY
else
    # No python3: at least require the schema marker in the raw text.
    grep -q '"schema_version": 1' "$out/BENCH_fig5.json"
    echo "BENCH_fig5.json sane (schema marker present)"
fi

echo "== trace record/replay: determinism + differential gate =="
# DESIGN.md §14: (1) recording the fixed-seed corpus twice must produce
# bit-identical logs — the trace format carries logical timestamps only,
# so any byte of drift is a determinism bug in the runtime itself;
# (2) the committed golden corpus must replay to equivalent outcome
# digests across every table backend (strict among the MTE tables,
# detection-verdict equality vs guarded copy, conservation laws for
# all) — `trace diff` exits nonzero on any divergence.
trace_bin() { cargo run --offline -q -p trace --bin trace -- "$@"; }
trace_bin record --workload "Asset Compression" --seed 7 --scale 1 \
    --out "$out/wl_a.trc" >/dev/null
trace_bin record --workload "Asset Compression" --seed 7 --scale 1 \
    --out "$out/wl_b.trc" >/dev/null
trace_bin record --scenario oob-contain --seed 11 --out "$out/oob_a.trc" >/dev/null
trace_bin record --scenario oob-contain --seed 11 --out "$out/oob_b.trc" >/dev/null
trace_bin record --scenario spurious-inject --seed 23 --out "$out/sp_a.trc" >/dev/null
trace_bin record --scenario spurious-inject --seed 23 --out "$out/sp_b.trc" >/dev/null
cmp "$out/wl_a.trc" "$out/wl_b.trc"
cmp "$out/oob_a.trc" "$out/oob_b.trc"
cmp "$out/sp_a.trc" "$out/sp_b.trc"
echo "fixed-seed corpus recordings bit-identical across runs"
for trc in crates/trace/corpus/*.trc; do
    trace_bin diff --in "$trc"
done
echo "golden corpus equivalent across backends"
# The runtime_doctor example must keep loading corpus traces: its dump
# must name the contained fault's method and attributed interface.
doctor_out="$(cargo run --offline -q --example runtime_doctor -- \
    crates/trace/corpus/oob_contain.trc)"
grep -q "Lib.oobWrite" <<<"$doctor_out"
grep -q "GetPrimitiveArrayCritical" <<<"$doctor_out"
echo "runtime_doctor reads corpus traces"

echo "== CI green =="

#!/usr/bin/env bash
# CI for the MTE4JNI reproduction.
#
# Assumes the OFFLINE-VENDORED setup described in DESIGN.md §3: there is
# no reachable crates.io registry, all external dependencies are path
# shims under shims/, and .cargo/config.toml pins `net.offline = true`.
# Nothing here may touch the network.
set -euo pipefail
cd "$(dirname "$0")"

echo "== build (workspace, all targets) =="
cargo build --offline --workspace --all-targets

echo "== test (workspace) =="
cargo test --offline --workspace -q

echo "== clippy =="
if cargo clippy --version >/dev/null 2>&1; then
    cargo clippy --offline --workspace --all-targets -- -D warnings
else
    echo "clippy not installed; skipping lint stage"
fi

echo "== bench JSON sanity =="
# A fast fig5 run must emit a parseable, schema-versioned report whose
# summary carries the headline ratios (README "Regenerating" section).
out="$(mktemp -d)"
trap 'rm -rf "$out"' EXIT
cargo run --offline -q -p bench --bin fig5 -- \
    --repeats 1 --max-pow 4 --json "$out" >/dev/null
test -s "$out/BENCH_fig5.json"
if command -v python3 >/dev/null 2>&1; then
    python3 - "$out/BENCH_fig5.json" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["schema_version"] == 1, doc["schema_version"]
assert doc["bench"] == "fig5"
assert doc["rows"], "rows must be non-empty"
assert "avg_mte_sync_ratio" in doc["summary"], sorted(doc["summary"])
assert "counters" in doc["telemetry"]
print("BENCH_fig5.json sane:", len(doc["rows"]), "rows")
PY
else
    # No python3: at least require the schema marker in the raw text.
    grep -q '"schema_version": 1' "$out/BENCH_fig5.json"
    echo "BENCH_fig5.json sane (schema marker present)"
fi

echo "== CI green =="
